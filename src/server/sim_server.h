/**
 * @file
 * Discrete-event model of an index-serving node (ISN).
 *
 * Reproduces the server of Section 4.1: a pool of worker threads (28) on
 * a machine with 24 hardware contexts, a FIFO waiting queue, and
 * malleable intra-request parallelism. A request with true sequential
 * demand W running at degree d consumes its remaining work at rate
 * S_d(class(W)) sequential-ms per wall-ms; when the total active threads
 * exceed the hardware contexts, all rates scale by contexts/threads
 * (processor sharing), which produces the saturation behaviour at high
 * load. Parallelism policies decide degrees at dispatch and through
 * recheck callbacks (TPC's dynamic correction, RampUp's increments).
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/stage_stats.h"
#include "obs/trace_recorder.h"
#include "policy/policy.h"
#include "policy/speedup_profile.h"
#include "sim/simulator.h"

namespace tpc::server {

/** Static configuration of the simulated ISN. */
struct ServerConfig
{
    /** Worker threads (the paper uses 28). */
    int numWorkers = 28;
    /** Hardware contexts (2 sockets x 6 cores x 2 SMT = 24). */
    int hwContexts = 24;
    /**
     * Sustained processing capacity in core-equivalents. SMT contexts do
     * not double throughput: 12 physical cores with hyperthreading deliver
     * roughly 14 cores' worth of work, which also reconciles the paper's
     * "73% CPU utilization" at high load with its mean service demand.
     * Execution rates scale by coreCapacity/activeThreads beyond this.
     */
    double coreCapacity = 14.0;
    /** Threshold classifying a request as long for the LongT metric. */
    double longThresholdMs = 80.0;
    /** CPU-utilization sampling interval (PDH counters, Section 4.6). */
    double cpuSampleIntervalMs = 25.0;
    /** EWMA weight of a new utilization sample. */
    double cpuEwmaAlpha = 0.30;
    /** Scale execution rates by contexts/threads when oversubscribed. */
    bool contentionSlowdown = true;
};

/** Per-request record emitted at completion. */
struct RequestOutcome
{
    std::uint64_t id = 0;
    double arrivalMs = 0.0;
    double dispatchMs = 0.0;
    double completionMs = 0.0;
    double trueMs = 0.0;
    double predictedMs = 0.0;
    /** Degree assigned at dispatch. */
    int initialDegree = 1;
    /** Highest degree the request ever ran at. */
    int maxDegree = 1;
    /** True when dynamic correction / ramp-up raised the degree. */
    bool corrected = false;
    /** A recheck wanted more threads but found none idle. */
    bool starvedCorrection = false;
    /** Target E, policy time estimate and load-metric reading captured
     *  from the dispatch rationale; 0 when unavailable (baselines,
     *  rationale off). */
    double targetMs = 0.0;
    double estimatedMs = 0.0;
    double loadValue = 0.0;
    /** Time from dispatch to the first degree raise (ms); negative when
     *  the degree was never raised. Feeds Figure-7-style correction-timing
     *  analyses (harness::computeCorrectionTiming). */
    double firstCorrectionDelayMs = -1.0;

    double responseMs() const { return completionMs - arrivalMs; }
    double queueMs() const { return dispatchMs - arrivalMs; }
};

/** Aggregate server telemetry. */
struct ServerCounters
{
    std::uint64_t arrivals = 0;
    std::uint64_t completions = 0;
    std::uint64_t recheckCallbacks = 0;
    std::uint64_t degreeIncreases = 0;
    /**
     * Core-milliseconds of CPU consumed: the integral over time of
     * min(active threads, core capacity). Dividing by (coreCapacity x
     * busy-period span) gives the CPU utilization the paper reports
     * (Section 2.2: ~73% at relatively high load).
     */
    double busyCoreMs = 0.0;
};

/**
 * The simulated ISN. Drive it by scheduling submit() calls on the shared
 * Simulator (see harness::runTrace) and run the simulator to completion.
 */
class SimServer
{
  public:
    /**
     * @param sim            Shared event engine.
     * @param config         Machine shape.
     * @param policy         Parallelism policy under test (borrowed).
     * @param executionModel Ground-truth speedup profiles used to execute
     *                       requests (indexed by *true* demand; policies
     *                       only ever see predictions).
     */
    SimServer(sim::Simulator& sim, const ServerConfig& config,
              policy::ParallelismPolicy& policy,
              const policy::SpeedupModel& executionModel);

    ~SimServer();

    SimServer(const SimServer&) = delete;
    SimServer& operator=(const SimServer&) = delete;

    /**
     * Submits a request arriving now (simulator time). The request is
     * dispatched immediately if a worker is idle, otherwise queued FIFO.
     * @return The request's id (usable with cancel()).
     */
    std::uint64_t submit(double trueMs, double predictedMs);

    /**
     * Cancels a queued or running request: it is removed without
     * completing (no outcome, no callback) and its workers are freed.
     * Supports hedged-request schemes that abandon the slower replica
     * (Dean and Barroso, "The Tail at Scale").
     * @return false when the id is unknown or already completed.
     */
    bool cancel(std::uint64_t id);

    /** Completed-request records, in completion order. */
    const std::vector<RequestOutcome>& outcomes() const { return outcomes_; }

    /**
     * Registers a callback fired at every completion. The cluster
     * simulation uses this to aggregate per-ISN completions per query.
     */
    void setCompletionCallback(std::function<void(const RequestOutcome&)> cb)
    {
        completionCallback_ = std::move(cb);
    }

    /**
     * Disables in-memory outcome storage (a 40-ISN x 100K-query cluster
     * run would otherwise retain millions of records); completions are
     * still delivered to the callback.
     */
    void setStoreOutcomes(bool store) { storeOutcomes_ = store; }

    /** Reserves outcome storage for an expected trace size. */
    void reserveOutcomes(std::size_t n) { outcomes_.reserve(n); }

    /**
     * Attaches a lifecycle-trace recorder (borrowed; nullptr detaches).
     * Every ARRIVE/DISPATCH/RECHECK/CORRECT/COMPLETE is recorded with
     * @p serverId as the trace process id (ISN index in cluster runs).
     */
    void attachTrace(obs::TraceRecorder* trace, int serverId = 0);

    /**
     * Attaches a metrics registry (borrowed; nullptr detaches). The server
     * registers counters (arrivals, completions, corrections,
     * correction_threads_added), gauges (queue_depth, idle_workers) and
     * histograms (response_ms, queue_ms) and updates them as it runs.
     */
    void attachMetrics(obs::MetricsRegistry* metrics);

    /**
     * Attaches a stage-stats collector (borrowed; nullptr detaches).
     * Completions are folded into shard 0 (the simulation is
     * single-threaded); rationale recording is enabled while attached so
     * records carry the target E and estimate.
     */
    void attachStageStats(obs::StageStatsCollector* stageStats);

    const ServerCounters& counters() const { return counters_; }

    /** Live snapshot of the policy-visible state. */
    policy::SystemState snapshotState() const;

    int idleWorkers() const { return idleWorkers_; }
    int queueLength() const { return static_cast<int>(queue_.size()); }
    int runningRequests() const { return static_cast<int>(running_.size()); }

    const ServerConfig& config() const { return config_; }

  private:
    struct Pending
    {
        std::uint64_t id;
        double arrivalMs;
        double trueMs;
        double predictedMs;
    };

    struct Running
    {
        std::uint64_t id = 0;
        double arrivalMs = 0.0;
        double dispatchMs = 0.0;
        double trueMs = 0.0;
        double predictedMs = 0.0;
        /** Remaining work in sequential-ms. */
        double remainingWork = 0.0;
        /** Simulation time of the last work-accounting update. */
        double lastUpdateMs = 0.0;
        int degree = 1;
        int initialDegree = 1;
        int maxDegree = 1;
        bool corrected = false;
        bool starvedCorrection = false;
        double targetMs = 0.0;
        double estimatedMs = 0.0;
        double loadValue = 0.0;
        double firstCorrectionDelayMs = -1.0;
        sim::EventId completionEvent = sim::kInvalidEventId;
        sim::EventId recheckEvent = sim::kInvalidEventId;
    };

    /** Execution rate (sequential-ms of work per wall-ms) of a request. */
    double rateOf(const Running& r) const;

    /** Processor-sharing factor from current thread oversubscription. */
    double contentionFactor() const;

    /** Folds elapsed time into every running request's remaining work. */
    void advanceWork();

    /** Recomputes and reschedules the completion event of one request. */
    void scheduleCompletion(Running& r);

    /** Reschedules all completions (used after a rate-affecting change). */
    void rescheduleAllCompletions();

    /** Applies a rate-affecting change around fn: advance, fn, resched. */
    template <typename Fn> void withWorkAccounting(Fn&& fn);

    /** Base TraceEvent for a request at the current simulation time. */
    obs::TraceEvent makeEvent(obs::TraceEventType type,
                              std::uint64_t id) const;

    /** Refreshes the queue-depth / idle-worker gauges (when attached). */
    void updateGauges();

    void dispatchFromQueue();
    void dispatch(const Pending& p);
    void onComplete(std::uint64_t id);
    void onRecheck(std::uint64_t id);
    void armRecheck(Running& r, double delayMs);
    void ensureCpuSampler();
    void onCpuSample();

    /** True when the request counts as long for the LongT metric. */
    bool countsAsLong(const Running& r) const;

    sim::Simulator& sim_;
    ServerConfig config_;
    policy::ParallelismPolicy& policy_;
    const policy::SpeedupModel& executionModel_;

    obs::TraceRecorder* trace_ = nullptr;
    int traceServerId_ = 0;
    obs::StageStatsCollector* stageStats_ = nullptr;
    obs::MetricsRegistry* metrics_ = nullptr;
    /** Metric handles resolved once at attachMetrics (hot-path updates
     *  must not pay a name lookup). */
    struct MetricHandles
    {
        obs::Counter* arrivals = nullptr;
        obs::Counter* completions = nullptr;
        obs::Counter* corrections = nullptr;
        obs::Counter* correctionThreadsAdded = nullptr;
        obs::Gauge* queueDepth = nullptr;
        obs::Gauge* idleWorkers = nullptr;
        obs::Histogram* responseMs = nullptr;
        obs::Histogram* queueMs = nullptr;
    } metric_;

    std::deque<Pending> queue_;
    std::unordered_map<std::uint64_t, Running> running_;
    std::vector<RequestOutcome> outcomes_;
    std::function<void(const RequestOutcome&)> completionCallback_;
    bool storeOutcomes_ = true;
    ServerCounters counters_;

    int idleWorkers_ = 0;
    int activeThreads_ = 0;
    double cpuUtilEwma_ = 0.0;
    /** Simulation time through which busyCoreMs has been accounted. */
    double lastAccountedMs_ = 0.0;
    bool samplerActive_ = false;
    std::uint64_t nextId_ = 0;
    double avgPredictedMs_ = 0.0;
    std::uint64_t predictedCount_ = 0;
    /** Oversubscription state at the last reschedule, to skip global
     *  rescheduling when rates were and remain contention-free. */
    bool wasOversubscribed_ = false;
};

} // namespace tpc::server
