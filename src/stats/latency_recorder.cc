#include "stats/latency_recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace tpc::stats {

std::string
LatencySummary::toString() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu mean=%.2f p50=%.2f p90=%.2f p95=%.2f p99=%.2f "
                  "p99.9=%.2f max=%.2f",
                  static_cast<unsigned long long>(count), mean, p50, p90, p95,
                  p99, p999, max);
    return buf;
}

std::vector<std::string>
LatencySummary::csvHeader(const std::string& prefix)
{
    return {prefix + "count", prefix + "mean", prefix + "p50",
            prefix + "p90",   prefix + "p95",  prefix + "p99",
            prefix + "p999",  prefix + "max"};
}

std::vector<std::string>
LatencySummary::toCsvRow() const
{
    std::vector<std::string> cells;
    cells.reserve(8);
    cells.push_back(std::to_string(count));
    char buf[64];
    for (double value : {mean, p50, p90, p95, p99, p999, max}) {
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        cells.emplace_back(buf);
    }
    return cells;
}

LatencyRecorder::LatencyRecorder(std::size_t expectedSamples)
{
    samples_.reserve(expectedSamples);
}

void
LatencyRecorder::add(double value)
{
    TPC_DCHECK(value >= 0.0);
    samples_.push_back(value);
    moments_.add(value);
    sortedValid_ = false;
}

void
LatencyRecorder::merge(const LatencyRecorder& other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    moments_.merge(other.moments_);
    sortedValid_ = false;
}

void
LatencyRecorder::ensureSorted() const
{
    if (sortedValid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
}

double
LatencyRecorder::percentile(double q) const
{
    TPC_CHECK(q >= 0.0 && q <= 1.0);
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    // Nearest-rank: the smallest value with at least ceil(q*n) samples <= it.
    const auto n = sorted_.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    return sorted_[rank - 1];
}

double
LatencyRecorder::fractionAbove(double threshold) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it =
        std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
    const auto above = static_cast<double>(sorted_.end() - it);
    return above / static_cast<double>(sorted_.size());
}

LatencySummary
LatencyRecorder::summary() const
{
    LatencySummary s;
    s.count = count();
    s.mean = mean();
    s.p50 = percentile(0.50);
    s.p90 = percentile(0.90);
    s.p95 = percentile(0.95);
    s.p99 = percentile(0.99);
    s.p999 = percentile(0.999);
    s.max = max();
    return s;
}

std::vector<std::pair<double, double>>
LatencyRecorder::cdf(std::size_t maxPoints) const
{
    std::vector<std::pair<double, double>> points;
    if (samples_.empty())
        return points;
    ensureSorted();
    const std::size_t n = sorted_.size();
    const std::size_t stride = std::max<std::size_t>(1, n / maxPoints);
    points.reserve(n / stride + 2);
    for (std::size_t i = stride - 1; i < n; i += stride) {
        points.emplace_back(sorted_[i],
                            static_cast<double>(i + 1) /
                                static_cast<double>(n));
    }
    if (points.empty() || points.back().second < 1.0)
        points.emplace_back(sorted_.back(), 1.0);
    return points;
}

} // namespace tpc::stats
