#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tpc::stats {

namespace {

/** Nearest-rank quantile of a sorted vector. */
double
sortedQuantile(const std::vector<double>& sorted, double q)
{
    const auto n = sorted.size();
    auto rank =
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
    rank = std::clamp<std::size_t>(rank, 1, n);
    return sorted[rank - 1];
}

} // namespace

ConfidenceInterval
bootstrapPercentile(const std::vector<double>& samples, double quantile,
                    int resamples, util::Rng& rng, double alpha)
{
    TPC_CHECK(!samples.empty());
    TPC_CHECK(quantile >= 0.0 && quantile <= 1.0);
    TPC_CHECK(resamples >= 2);
    TPC_CHECK(alpha > 0.0 && alpha < 1.0);

    const std::size_t n = samples.size();
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());

    ConfidenceInterval ci;
    ci.point = sortedQuantile(sorted, quantile);

    // Resample ranks rather than values: drawing n uniform indices and
    // taking the k-th order statistic of the resample is equivalent to
    // indexing the sorted original at the k-th order statistic of the
    // index sample, so each bootstrap iteration is O(n) without a sort.
    std::vector<double> statistics;
    statistics.reserve(static_cast<std::size_t>(resamples));
    std::vector<std::uint32_t> indexSample(n);
    for (int b = 0; b < resamples; ++b) {
        for (std::size_t i = 0; i < n; ++i)
            indexSample[i] = static_cast<std::uint32_t>(rng.uniformInt(n));
        const auto rank = std::clamp<std::size_t>(
            static_cast<std::size_t>(
                std::ceil(quantile * static_cast<double>(n))),
            1, n);
        std::nth_element(indexSample.begin(),
                         indexSample.begin() +
                             static_cast<std::ptrdiff_t>(rank - 1),
                         indexSample.end());
        statistics.push_back(
            sorted[indexSample[rank - 1]]);
    }
    std::sort(statistics.begin(), statistics.end());

    const auto loIdx = static_cast<std::size_t>(
        (alpha / 2.0) * static_cast<double>(resamples - 1));
    const auto hiIdx = static_cast<std::size_t>(
        (1.0 - alpha / 2.0) * static_cast<double>(resamples - 1));
    ci.lower = statistics[loIdx];
    ci.upper = statistics[hiIdx];
    return ci;
}

} // namespace tpc::stats
