#include "stats/online_stats.h"

#include <algorithm>
#include <cmath>

namespace tpc::stats {

void
OnlineStats::add(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
OnlineStats::merge(const OnlineStats& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
OnlineStats::reset()
{
    *this = OnlineStats();
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace tpc::stats
