/**
 * @file
 * Bootstrap confidence intervals for percentile estimates.
 *
 * Tail-latency claims compare single numbers (P99, P99.9) between
 * policies; a 95% bootstrap interval says how much of a measured gap is
 * signal. Used by bench_variability to put error bars on the headline
 * results.
 */
#pragma once

#include <vector>

#include "util/rng.h"

namespace tpc::stats {

/** A two-sided confidence interval around a point estimate. */
struct ConfidenceInterval
{
    double point = 0.0;
    double lower = 0.0;
    double upper = 0.0;

    /** Half-width of the interval. */
    double halfWidth() const { return (upper - lower) / 2.0; }

    /** True when the other interval does not overlap this one. */
    bool separatedFrom(const ConfidenceInterval& other) const
    {
        return upper < other.lower || other.upper < lower;
    }
};

/**
 * Percentile bootstrap: resamples the data with replacement, recomputes
 * the q-quantile per resample, and returns the [alpha/2, 1-alpha/2]
 * interval of the resampled statistics.
 *
 * @param samples    Observations (need not be sorted).
 * @param quantile   Quantile of interest in [0, 1].
 * @param resamples  Bootstrap iterations (>= 100 recommended).
 * @param rng        Random source (deterministic per seed).
 * @param alpha      1 - confidence level (0.05 -> 95% interval).
 */
ConfidenceInterval bootstrapPercentile(const std::vector<double>& samples,
                                       double quantile, int resamples,
                                       util::Rng& rng, double alpha = 0.05);

} // namespace tpc::stats
