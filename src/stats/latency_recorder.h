/**
 * @file
 * Exact-percentile latency recorder.
 *
 * Tail-latency experiments need exact order statistics (the paper reports
 * P99 and P99.9 over 100K-request traces), so this recorder keeps every
 * sample and sorts lazily. Memory is 8 bytes per sample, which is cheap at
 * the trace sizes used here.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/online_stats.h"

namespace tpc::stats {

/** Percentile summary of one experiment run. */
struct LatencySummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double max = 0.0;

    /** One-line human-readable rendering (values in ms). */
    std::string toString() const;

    /** CSV header cells matching toCsvRow(), each prefixed by @p prefix
     *  (e.g. prefix "response_ms_" gives "response_ms_p50"). */
    static std::vector<std::string> csvHeader(const std::string& prefix = "");

    /** CSV cells: count, mean, p50, p90, p95, p99, p999, max. */
    std::vector<std::string> toCsvRow() const;
};

/** Records latency samples and answers exact percentile queries. */
class LatencyRecorder
{
  public:
    LatencyRecorder() = default;

    /** Pre-allocates space for the expected sample count. */
    explicit LatencyRecorder(std::size_t expectedSamples);

    /** Records one latency sample (any non-negative unit; ms by convention). */
    void add(double value);

    /** Merges another recorder's samples into this one. */
    void merge(const LatencyRecorder& other);

    /**
     * Returns the exact q-quantile (0 <= q <= 1) using the nearest-rank
     * method on the sorted samples. Returns 0 when empty.
     */
    double percentile(double q) const;

    /** Fraction of samples strictly greater than the threshold. */
    double fractionAbove(double threshold) const;

    /** Mean of all samples. */
    double mean() const { return moments_.mean(); }

    /** Largest sample. */
    double max() const { return moments_.max(); }

    std::uint64_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** Standard percentile bundle used by the bench harness. */
    LatencySummary summary() const;

    /**
     * Returns the empirical CDF as (value, cumulativeFraction) pairs at
     * every k-th sorted sample (k chosen so at most maxPoints are emitted).
     */
    std::vector<std::pair<double, double>> cdf(std::size_t maxPoints =
                                                   2000) const;

    /** Read-only access to the raw samples (unsorted). */
    const std::vector<double>& samples() const { return samples_; }

  private:
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;
    OnlineStats moments_;
};

} // namespace tpc::stats
