/**
 * @file
 * Streaming first/second-moment accumulator (Welford's algorithm).
 */
#pragma once

#include <cstdint>

namespace tpc::stats {

/**
 * Accumulates count, mean, variance, min and max in O(1) space with
 * numerically stable updates. Suitable for very long runs.
 */
class OnlineStats
{
  public:
    /** Adds one observation. */
    void add(double value);

    /** Merges another accumulator into this one (parallel reduction). */
    void merge(const OnlineStats& other);

    /** Resets to the empty state. */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest observation; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace tpc::stats
