/**
 * @file
 * Log-spaced latency histogram with bounded relative error.
 *
 * Complements LatencyRecorder: where the recorder stores every sample for
 * exact percentiles, the histogram gives O(1)-memory aggregation (e.g. the
 * per-ISN recorders in the 40-node cluster simulation) at a configurable
 * relative error per bucket.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace tpc::stats {

/** Fixed-growth-factor logarithmic histogram over positive values. */
class LogHistogram
{
  public:
    /**
     * @param minValue     Lower bound of the first bucket (> 0).
     * @param maxValue     Upper bound of the last regular bucket.
     * @param growthFactor Per-bucket growth; 1.02 gives ~1% quantile error.
     */
    LogHistogram(double minValue = 0.01, double maxValue = 100000.0,
                 double growthFactor = 1.02);

    /** Adds one observation (values outside range clamp to edge buckets). */
    void add(double value);

    /** Adds @p count observations of the same value. */
    void add(double value, std::uint64_t count);

    /** Merges a histogram with identical bucketing parameters. */
    void merge(const LogHistogram& other);

    /** Zeroes every bucket, keeping the bucketing parameters. */
    void clear();

    /** Approximate q-quantile (0 <= q <= 1); 0 when empty. */
    double percentile(double q) const;

    /**
     * Approximate quantiles for several q values in one bucket walk.
     * @p qs must be sorted ascending; returns one value per entry.
     * Equivalent to calling percentile() per entry, but O(buckets)
     * total instead of O(buckets * |qs|) — the shape a live /statsz
     * snapshot wants when it reports p50/p90/p99/p99.9 per class.
     */
    std::vector<double> percentiles(const std::vector<double>& qs) const;

    /** Fraction of observations at or below the value. */
    double fractionAtOrBelow(double value) const;

    std::uint64_t count() const { return total_; }
    double mean() const;
    std::size_t bucketCount() const { return counts_.size(); }

    /** Upper bound of bucket i (its representative value). */
    double bucketUpperBound(std::size_t i) const;

    /** Count in bucket i. */
    std::uint64_t bucketValue(std::size_t i) const { return counts_[i]; }

  private:
    std::size_t bucketIndex(double value) const;

    double minValue_;
    double logMin_;
    double logGrowth_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

} // namespace tpc::stats
