#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tpc::stats {

LogHistogram::LogHistogram(double minValue, double maxValue,
                           double growthFactor)
    : minValue_(minValue),
      logMin_(std::log(minValue)),
      logGrowth_(std::log(growthFactor))
{
    TPC_CHECK(minValue > 0.0);
    TPC_CHECK(maxValue > minValue);
    TPC_CHECK(growthFactor > 1.0);
    const auto buckets = static_cast<std::size_t>(
        std::ceil((std::log(maxValue) - logMin_) / logGrowth_)) + 2;
    counts_.assign(buckets, 0);
}

std::size_t
LogHistogram::bucketIndex(double value) const
{
    if (value <= minValue_)
        return 0;
    const auto idx = static_cast<std::size_t>(
        (std::log(value) - logMin_) / logGrowth_) + 1;
    return std::min(idx, counts_.size() - 1);
}

void
LogHistogram::add(double value)
{
    add(value, 1);
}

void
LogHistogram::add(double value, std::uint64_t count)
{
    counts_[bucketIndex(value)] += count;
    total_ += count;
    sum_ += value * static_cast<double>(count);
}

void
LogHistogram::merge(const LogHistogram& other)
{
    TPC_CHECK_MSG(other.counts_.size() == counts_.size() &&
                      other.minValue_ == minValue_ &&
                      other.logGrowth_ == logGrowth_,
                  "histograms must share bucketing parameters");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
}

void
LogHistogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    sum_ = 0.0;
}

double
LogHistogram::bucketUpperBound(std::size_t i) const
{
    if (i == 0)
        return minValue_;
    return std::exp(logMin_ + static_cast<double>(i) * logGrowth_);
}

double
LogHistogram::percentile(double q) const
{
    TPC_CHECK(q >= 0.0 && q <= 1.0);
    if (total_ == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        running += counts_[i];
        if (running >= std::max<std::uint64_t>(target, 1))
            return bucketUpperBound(i);
    }
    return bucketUpperBound(counts_.size() - 1);
}

std::vector<double>
LogHistogram::percentiles(const std::vector<double>& qs) const
{
    std::vector<double> out(qs.size(), 0.0);
    if (total_ == 0)
        return out;
    for (std::size_t i = 1; i < qs.size(); ++i)
        TPC_CHECK_MSG(qs[i] >= qs[i - 1], "quantiles must be sorted");
    std::size_t next = 0;
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < counts_.size() && next < qs.size(); ++i) {
        running += counts_[i];
        while (next < qs.size()) {
            TPC_CHECK(qs[next] >= 0.0 && qs[next] <= 1.0);
            const auto target = std::max<std::uint64_t>(
                static_cast<std::uint64_t>(
                    std::ceil(qs[next] * static_cast<double>(total_))),
                1);
            if (running < target)
                break;
            out[next++] = bucketUpperBound(i);
        }
    }
    for (; next < qs.size(); ++next)
        out[next] = bucketUpperBound(counts_.size() - 1);
    return out;
}

double
LogHistogram::fractionAtOrBelow(double value) const
{
    if (total_ == 0)
        return 0.0;
    const std::size_t limit = bucketIndex(value);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i <= limit; ++i)
        running += counts_[i];
    return static_cast<double>(running) / static_cast<double>(total_);
}

double
LogHistogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(total_);
}

} // namespace tpc::stats
