#include "search/result_cache.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace tpc::search {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity)
{
    TPC_CHECK(capacity >= 1);
}

std::string
ResultCache::keyFor(const Query& query)
{
    std::vector<std::uint32_t> terms = query.terms;
    std::sort(terms.begin(), terms.end());
    std::string key;
    key.reserve(terms.size() * 8);
    char buf[16];
    for (std::uint32_t term : terms) {
        std::snprintf(buf, sizeof(buf), "%x,", term);
        key += buf;
    }
    return key;
}

const SearchResult*
ResultCache::lookup(const Query& query)
{
    const std::string key = keyFor(query);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    // Refresh recency: move the entry to the front of the LRU list.
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->result;
}

void
ResultCache::insert(const Query& query, SearchResult result)
{
    const std::string key = keyFor(query);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        it->second->result = std::move(result);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (entries_.size() >= capacity_) {
        // Evict the least recently used entry (back of the list).
        const Entry& victim = lru_.back();
        entries_.erase(victim.key);
        lru_.pop_back();
        ++stats_.evictions;
    }
    lru_.push_front(Entry{key, std::move(result)});
    entries_.emplace(key, lru_.begin());
}

void
ResultCache::clear()
{
    lru_.clear();
    entries_.clear();
}

} // namespace tpc::search
