/**
 * @file
 * Query execution engine: conjunctive posting-list intersection with BM25
 * scoring and chunked intra-query parallelism.
 *
 * This reproduces the execution model the paper builds on (Jeon et al.,
 * EuroSys 2013): the document-id space of the index fragment is partitioned
 * into small tasks forming a task pool; query threads retrieve tasks from
 * the pool and process them, and the scheduler can add threads to a query
 * while it runs. Query execution has sequential phases (parsing/rewriting
 * before, merge + top-k rescoring after) that bound the speedup of short
 * queries, matching the efficiency profile in Figure 2.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "search/inverted_index.h"
#include "search/query.h"

namespace tpc::search {

/** One scored document. */
struct ScoredDoc
{
    std::uint32_t docId = 0;
    double score = 0.0;
};

/** Bounded best-k collector (min-heap on score). */
class TopKCollector
{
  public:
    explicit TopKCollector(std::size_t k);

    /** Offers a candidate; keeps it only if within the best k so far. */
    void offer(std::uint32_t docId, double score);

    /** Merges another collector's candidates. */
    void merge(const TopKCollector& other);

    /** Returns the kept documents sorted by descending score. */
    std::vector<ScoredDoc> sortedResults() const;

    std::size_t size() const { return heap_.size(); }
    std::size_t capacity() const { return k_; }

  private:
    std::size_t k_;
    // Min-heap ordered by score so the worst kept result is at the front.
    std::vector<ScoredDoc> heap_;
};

/** Tunables for the execution engine. */
struct ExecutorParams
{
    /** Results returned per query. */
    int topK = 10;
    /** Extra scoring work per matching document (ranking-model weight). */
    int scoringRounds = 16;
    /**
     * Ranking work per posting traversed (applied per chunk, proportional
     * to the postings it scanned). Production rankers spend far more per
     * posting than a bare intersection; this keeps the parallel phase's
     * cost realistic relative to the sequential phases. Calibrated so the
     * engine's class speedups land near Figure 2.
     */
    int traversalRounds = 14;
    /** Sequential parse/rewrite work units per query (fixed). */
    int parseRounds = 200000;
    /** Additional parse work units per keyword. */
    int parseRoundsPerTerm = 20000;
    /** Sequential rescoring work units per top-k result. */
    int rescoreRounds = 50000;
    /** Number of document-range tasks the doc space is split into. */
    int taskChunks = 48;
};

/** Result of executing a query (or one chunk of it). */
struct ChunkResult
{
    explicit ChunkResult(std::size_t k) : topK(k) {}

    TopKCollector topK;
    std::uint64_t matchCount = 0;
    std::uint64_t postingsTraversed = 0;
};

/** Final merged result of a query. */
struct SearchResult
{
    std::vector<ScoredDoc> topDocs;
    std::uint64_t matchCount = 0;
    std::uint64_t postingsTraversed = 0;
};

/** A [begin, end) document-id range forming one task. */
struct DocRange
{
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
};

/**
 * Executes queries against an index. Stateless across queries; safe for
 * concurrent use from multiple threads on distinct ChunkResult outputs.
 */
class QueryExecutor
{
  public:
    /** @param index Borrowed; must outlive the executor. */
    QueryExecutor(const InvertedIndex& index, const ExecutorParams& params);

    /** Splits the doc-id space into the configured number of tasks. */
    std::vector<DocRange> makeChunks() const;

    /** Sequential pre-phase: parsing/rewriting (not parallelizable). */
    void parsePhase(const Query& query) const;

    /**
     * Processes one document range: intersects the query's posting lists
     * within [range.begin, range.end) and scores matches into @p out.
     * This is the parallelizable part.
     */
    void executeRange(const Query& query, const DocRange& range,
                      ChunkResult& out) const;

    /** Sequential post-phase: merge chunk results and rescore the top k. */
    SearchResult mergeAndRescore(const Query& query,
                                 std::vector<ChunkResult>& chunks) const;

    /** Convenience: full sequential execution (parse, 1 range, rescore). */
    SearchResult executeSequential(const Query& query) const;

    const ExecutorParams& params() const { return params_; }

  private:
    double scoreDocument(const Query& query, std::uint32_t docId,
                         const std::vector<std::uint8_t>& tfs) const;

    /** The conjunctive merge itself (no ranking work). */
    void intersectRange(const Query& query, const DocRange& range,
                        ChunkResult& out) const;

    /** Ranking-model work proportional to the chunk's traversed postings. */
    void rankingWork(const ChunkResult& chunk) const;

    const InvertedIndex& index_;
    ExecutorParams params_;
};

/**
 * Deterministic CPU-bound busy work used to model the non-indexed parts of
 * query processing (parsing, ranking-model evaluation). Returns a value
 * that depends on every iteration so the loop cannot be elided.
 */
double spinWork(int rounds, double seed);

} // namespace tpc::search
