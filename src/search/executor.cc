#include "search/executor.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tpc::search {

double
spinWork(int rounds, double seed)
{
    // A data-dependent multiply-add chain: cheap, CPU-bound, and immune to
    // vectorization shortcuts because every step feeds the next.
    double x = seed + 1.0;
    for (int i = 0; i < rounds; ++i)
        x = x * 1.0000001 + 0.1234567;
    return x;
}

// --- TopKCollector ----------------------------------------------------------

namespace {

bool
worseThan(const ScoredDoc& a, const ScoredDoc& b)
{
    // Min-heap comparator: "greater" score sinks; ties break on doc id so
    // results are deterministic.
    if (a.score != b.score)
        return a.score > b.score;
    return a.docId < b.docId;
}

} // namespace

TopKCollector::TopKCollector(std::size_t k) : k_(k)
{
    TPC_CHECK(k >= 1);
    heap_.reserve(k);
}

void
TopKCollector::offer(std::uint32_t docId, double score)
{
    if (heap_.size() < k_) {
        heap_.push_back({docId, score});
        std::push_heap(heap_.begin(), heap_.end(), worseThan);
        return;
    }
    if (score <= heap_.front().score)
        return;
    std::pop_heap(heap_.begin(), heap_.end(), worseThan);
    heap_.back() = {docId, score};
    std::push_heap(heap_.begin(), heap_.end(), worseThan);
}

void
TopKCollector::merge(const TopKCollector& other)
{
    for (const auto& doc : other.heap_)
        offer(doc.docId, doc.score);
}

std::vector<ScoredDoc>
TopKCollector::sortedResults() const
{
    std::vector<ScoredDoc> out = heap_;
    std::sort(out.begin(), out.end(), [](const ScoredDoc& a,
                                         const ScoredDoc& b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.docId < b.docId;
    });
    return out;
}

// --- QueryExecutor ----------------------------------------------------------

QueryExecutor::QueryExecutor(const InvertedIndex& index,
                             const ExecutorParams& params)
    : index_(index), params_(params)
{
    TPC_CHECK(params.topK >= 1);
    TPC_CHECK(params.taskChunks >= 1);
}

std::vector<DocRange>
QueryExecutor::makeChunks() const
{
    const std::uint32_t docs = index_.documentCount();
    const auto chunks = static_cast<std::uint32_t>(params_.taskChunks);
    std::vector<DocRange> ranges;
    ranges.reserve(chunks);
    for (std::uint32_t c = 0; c < chunks; ++c) {
        const std::uint32_t begin =
            static_cast<std::uint32_t>((static_cast<std::uint64_t>(docs) * c) /
                                       chunks);
        const std::uint32_t end = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(docs) * (c + 1)) / chunks);
        if (begin < end)
            ranges.push_back({begin, end});
    }
    return ranges;
}

void
QueryExecutor::parsePhase(const Query& query) const
{
    const int rounds =
        params_.parseRounds +
        params_.parseRoundsPerTerm * static_cast<int>(query.terms.size());
    volatile double sink = spinWork(rounds, static_cast<double>(query.id));
    (void)sink;
}

double
QueryExecutor::scoreDocument(const Query& query, std::uint32_t docId,
                             const std::vector<std::uint8_t>& tfs) const
{
    // BM25 with an extra ranking-model term whose cost is configurable;
    // production rankers are far heavier than the BM25 core, so the spin
    // models the neural/boosted second-stage feature computation.
    constexpr double k1 = 1.2;
    constexpr double b = 0.75;
    const double docLen = index_.documentLength(docId);
    const double lenNorm = 1.0 - b + b * docLen /
                                        std::max(1.0,
                                                 index_.averageDocumentLength());
    double score = 0.0;
    for (std::size_t t = 0; t < query.terms.size(); ++t) {
        const double tf = tfs[t];
        score += index_.idf(query.terms[t]) * (tf * (k1 + 1.0)) /
                 (tf + k1 * lenNorm);
    }
    score += 1e-12 * spinWork(params_.scoringRounds, score);
    return score;
}

void
QueryExecutor::executeRange(const Query& query, const DocRange& range,
                            ChunkResult& out) const
{
    intersectRange(query, range, out);
    rankingWork(out);
}

void
QueryExecutor::intersectRange(const Query& query, const DocRange& range,
                              ChunkResult& out) const
{
    const std::size_t k = query.terms.size();
    TPC_DCHECK(k >= 1);

    // Cursor per posting list, positioned at the start of the range.
    struct Cursor
    {
        const PostingList* list;
        std::size_t pos;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(k);
    for (std::uint32_t term : query.terms) {
        const PostingList& list = index_.postings(term);
        if (list.empty()) {
            // Conjunctive query with an unseen term matches nothing, but we
            // still traverse nothing, so just return.
            return;
        }
        cursors.push_back({&list, list.firstAtOrAfter(range.begin)});
    }

    std::vector<std::uint8_t> tfs(k);
    // Conjunctive merge: repeatedly align all cursors on the same doc id.
    // Linear advancement makes traversal cost proportional to the posting
    // mass inside the range, which is the paper's dominant cost driver.
    std::uint32_t candidate = range.begin;
    while (true) {
        bool aligned = true;
        for (std::size_t t = 0; t < k; ++t) {
            auto& cur = cursors[t];
            const auto& ids = cur.list->docIds();
            while (cur.pos < ids.size() && ids[cur.pos] < candidate) {
                ++cur.pos;
                ++out.postingsTraversed;
            }
            if (cur.pos >= ids.size() || ids[cur.pos] >= range.end)
                return; // This list is exhausted within the range.
            if (ids[cur.pos] > candidate) {
                candidate = ids[cur.pos];
                aligned = false;
                break; // Restart alignment at the new candidate.
            }
        }
        if (!aligned)
            continue;
        // All cursors agree on `candidate`: it matches the query.
        for (std::size_t t = 0; t < k; ++t)
            tfs[t] = cursors[t].list->termFrequency(cursors[t].pos);
        out.topK.offer(candidate, scoreDocument(query, candidate, tfs));
        ++out.matchCount;
        ++candidate;
    }
}

void
QueryExecutor::rankingWork(const ChunkResult& chunk) const
{
    const auto rounds = static_cast<int>(
        std::min<std::uint64_t>(chunk.postingsTraversed *
                                    static_cast<std::uint64_t>(
                                        params_.traversalRounds),
                                1u << 30));
    volatile double sink = spinWork(rounds, 1.0);
    (void)sink;
}

SearchResult
QueryExecutor::mergeAndRescore(const Query& query,
                               std::vector<ChunkResult>& chunks) const
{
    TPC_CHECK(!chunks.empty());
    SearchResult result;
    TopKCollector merged(static_cast<std::size_t>(params_.topK));
    for (const auto& chunk : chunks) {
        merged.merge(chunk.topK);
        result.matchCount += chunk.matchCount;
        result.postingsTraversed += chunk.postingsTraversed;
    }
    result.topDocs = merged.sortedResults();
    // Sequential rescoring of the final candidates (second-stage ranker).
    double sink = 0.0;
    for (auto& doc : result.topDocs)
        sink += spinWork(params_.rescoreRounds, doc.score);
    volatile double guard = sink + static_cast<double>(query.id);
    (void)guard;
    return result;
}

SearchResult
QueryExecutor::executeSequential(const Query& query) const
{
    parsePhase(query);
    std::vector<ChunkResult> chunks;
    chunks.emplace_back(static_cast<std::size_t>(params_.topK));
    executeRange(query, {0, index_.documentCount()}, chunks[0]);
    return mergeAndRescore(query, chunks);
}

} // namespace tpc::search
