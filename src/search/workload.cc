#include "search/workload.h"

#include <algorithm>

#include "util/logging.h"

namespace tpc::search {

ml::GbrtParams
defaultPredictorParams()
{
    ml::GbrtParams params;
    params.loss = ml::GbrtLoss::AbsoluteError;
    params.numTrees = 200;
    params.learningRate = 0.15;
    return params;
}

SearchWorkload::SearchWorkload(const WorkloadParams& params) : params_(params)
{
    TPC_CHECK(params.trainingQueries > 0);
    TPC_CHECK(params.traceQueries > 0);

    index_ = std::make_unique<InvertedIndex>(
        InvertedIndex::buildSynthetic(params.corpus, params.seed));

    QueryGenerator generator(*index_, params.queryLog, params.seed + 1);
    const FeatureExtractor extractor(*index_);

    // Training set: queries drawn from the same generator but disjoint from
    // the replayed trace, mirroring the paper's train-on-one-ISN setup.
    ml::Dataset trainSet(FeatureExtractor::featureNames());
    for (std::size_t i = 0; i < params.trainingQueries; ++i) {
        const Query q = generator.next();
        trainSet.addRow(extractor.extract(q), q.trueSequentialMs);
    }
    ml::GbrtParams gbrtParams = params.predictor;
    gbrtParams.seed = params.seed + 2;
    predictor_.train(trainSet, gbrtParams);

    // The trace itself.
    queries_ = generator.generateLog(params.traceQueries);
    trace_.reserve(queries_.size());
    std::vector<double> predicted;
    std::vector<double> actual;
    predicted.reserve(queries_.size());
    actual.reserve(queries_.size());
    for (const Query& q : queries_) {
        TraceEntry entry;
        entry.trueMs = q.trueSequentialMs;
        entry.predictedMs = std::max(
            params.queryLog.minDemandMs,
            predictor_.predict(extractor.extract(q)));
        entry.numKeywords = static_cast<int>(q.terms.size());
        trace_.push_back(entry);
        predicted.push_back(entry.predictedMs);
        actual.push_back(entry.trueMs);
    }

    report_.l1ErrorMs = ml::meanAbsoluteError(predicted, actual);
    report_.rmseMs = ml::rootMeanSquaredError(predicted, actual);
    report_.longAt80Ms = ml::classifyAtThreshold(predicted, actual, 80.0);
}

} // namespace tpc::search
