#include "search/codec.h"

#include "util/logging.h"

namespace tpc::search {

void
varbyteEncode(std::uint64_t value, std::vector<std::uint8_t>& out)
{
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t
varbyteDecode(const std::vector<std::uint8_t>& buf, std::size_t& offset)
{
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
        TPC_DCHECK(offset < buf.size());
        const std::uint8_t byte = buf[offset++];
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
        TPC_DCHECK(shift < 64);
    }
}

std::vector<std::uint8_t>
encodeDocIds(const std::vector<std::uint32_t>& ids)
{
    std::vector<std::uint8_t> out;
    out.reserve(ids.size() + 8);
    varbyteEncode(ids.size(), out);
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i == 0) {
            varbyteEncode(ids[0], out);
        } else {
            TPC_DCHECK(ids[i] > prev);
            varbyteEncode(ids[i] - prev, out);
        }
        prev = ids[i];
    }
    return out;
}

std::vector<std::uint32_t>
decodeDocIds(const std::vector<std::uint8_t>& buf)
{
    std::size_t offset = 0;
    const std::uint64_t count = varbyteDecode(buf, offset);
    std::vector<std::uint32_t> ids;
    ids.reserve(count);
    std::uint32_t prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto delta =
            static_cast<std::uint32_t>(varbyteDecode(buf, offset));
        prev = (i == 0) ? delta : prev + delta;
        ids.push_back(prev);
    }
    return ids;
}

} // namespace tpc::search
