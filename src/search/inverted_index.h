/**
 * @file
 * In-memory inverted index over a synthetic Zipfian corpus.
 *
 * Substitutes for the Bing web-index shard: each index-serving node in the
 * paper searches its fragment of the web index; here the fragment is a
 * synthetic document collection whose term popularity follows a Zipf law,
 * giving posting lists with the realistic heavy-tailed length distribution
 * that drives query service-demand variability (Section 2.3).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tpc::search {

/** One (document, term-frequency) posting. */
struct Posting
{
    std::uint32_t docId;
    std::uint8_t termFrequency;
};

/** A term's posting list: parallel docId / termFrequency arrays. */
class PostingList
{
  public:
    /** Appends a posting; doc ids must arrive in increasing order. */
    void add(std::uint32_t docId, std::uint8_t termFrequency);

    std::size_t size() const { return docIds_.size(); }
    bool empty() const { return docIds_.empty(); }

    const std::vector<std::uint32_t>& docIds() const { return docIds_; }
    std::uint8_t termFrequency(std::size_t i) const { return tfs_[i]; }

    /**
     * Index of the first posting with docId >= @p docId (binary search);
     * size() when none.
     */
    std::size_t firstAtOrAfter(std::uint32_t docId) const;

    /** True when some posting has exactly this doc id. */
    bool contains(std::uint32_t docId) const;

  private:
    std::vector<std::uint32_t> docIds_;
    std::vector<std::uint8_t> tfs_;
};

/** Parameters of the synthetic corpus behind the index. */
struct CorpusParams
{
    std::uint32_t numDocuments = 60000;
    std::uint32_t vocabularySize = 60000;
    /** Zipf skew of term popularity. */
    double termSkew = 1.1;
    /** Lognormal document length: median terms per document. */
    double medianDocLength = 80.0;
    /** Lognormal sigma of document length. */
    double docLengthSigma = 0.4;
};

/**
 * Document-sharded inverted index fragment.
 *
 * Built either synthetically (buildSynthetic) or from explicit documents
 * (IndexBuilder below). Provides the statistics the feature extractor and
 * BM25 scorer need.
 */
class InvertedIndex
{
  public:
    InvertedIndex() = default;

    /** Generates a synthetic corpus and indexes it; deterministic per seed. */
    static InvertedIndex buildSynthetic(const CorpusParams& params,
                                        std::uint64_t seed);

    std::uint32_t documentCount() const { return documentCount_; }
    std::uint32_t vocabularySize() const
    {
        return static_cast<std::uint32_t>(postings_.size());
    }

    /** Posting list of a term (empty list for unseen terms). */
    const PostingList& postings(std::uint32_t term) const;

    /** Document frequency: number of documents containing the term. */
    std::uint32_t documentFrequency(std::uint32_t term) const;

    /** BM25-style inverse document frequency of the term. */
    double idf(std::uint32_t term) const;

    /** Length (in terms) of a document. */
    std::uint32_t documentLength(std::uint32_t doc) const
    {
        return docLengths_[doc];
    }

    double averageDocumentLength() const { return avgDocLength_; }

    /** Total number of postings across all terms. */
    std::uint64_t postingCount() const { return postingCount_; }

    /**
     * Terms sorted by descending document frequency; used by the query
     * generator to pick terms from document-frequency strata.
     */
    std::vector<std::uint32_t> termsByDescendingFrequency() const;

    /**
     * Serializes the complete index (postings with term frequencies,
     * document lengths, statistics) with delta+varbyte compression.
     * Round-trips exactly through deserialize().
     */
    std::vector<std::uint8_t> serialize() const;

    /** Restores an index produced by serialize(). Fatal on bad input. */
    static InvertedIndex deserialize(const std::vector<std::uint8_t>& blob);

    /** Writes serialize() output to a file (fatal on I/O error). */
    void saveToFile(const std::string& path) const;

    /** Reads an index saved with saveToFile (fatal on I/O error). */
    static InvertedIndex loadFromFile(const std::string& path);

    /** Serializes doc-id lists with delta+varbyte (codec round-trip). */
    std::vector<std::uint8_t> serializeDocIds() const;

    /**
     * Checks that the serialized form decodes back to this index's doc-id
     * lists; returns false on any mismatch.
     */
    bool verifySerializedDocIds(const std::vector<std::uint8_t>& blob) const;

  private:
    friend class IndexBuilder;

    std::vector<PostingList> postings_;
    std::vector<std::uint16_t> docLengths_;
    std::uint32_t documentCount_ = 0;
    std::uint64_t postingCount_ = 0;
    double avgDocLength_ = 0.0;
};

/** Streaming builder: feed documents one at a time, then finish(). */
class IndexBuilder
{
  public:
    /** @param vocabularySize Upper bound on term ids. */
    explicit IndexBuilder(std::uint32_t vocabularySize);

    /**
     * Adds the next document. Term ids may repeat (repetitions become term
     * frequency); documents must be added in increasing doc-id order
     * starting at 0.
     */
    void addDocument(const std::vector<std::uint32_t>& terms);

    /** Finalizes and returns the index; the builder is consumed. */
    InvertedIndex finish();

  private:
    InvertedIndex index_;
    std::vector<std::uint32_t> scratchCounts_;
    std::vector<std::uint32_t> scratchTerms_;
};

} // namespace tpc::search
