/**
 * @file
 * Variable-byte integer codec for compressed posting storage.
 *
 * Production index-serving nodes keep postings compressed in memory; this
 * codec provides the same capability for the synthetic index (delta +
 * varbyte), and is exercised by InvertedIndex::serialize/deserialize.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace tpc::search {

/** Appends one varbyte-encoded integer to the buffer. */
void varbyteEncode(std::uint64_t value, std::vector<std::uint8_t>& out);

/**
 * Decodes one varbyte integer starting at @p offset; advances the offset
 * past the encoded bytes. Behaviour is undefined on truncated input in
 * release builds; debug builds abort.
 */
std::uint64_t varbyteDecode(const std::vector<std::uint8_t>& buf,
                            std::size_t& offset);

/**
 * Delta + varbyte encodes a strictly increasing document-id sequence.
 * The count is encoded first, then the first id, then gaps.
 */
std::vector<std::uint8_t> encodeDocIds(const std::vector<std::uint32_t>& ids);

/** Inverse of encodeDocIds. */
std::vector<std::uint32_t> decodeDocIds(const std::vector<std::uint8_t>& buf);

} // namespace tpc::search
