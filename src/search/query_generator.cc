#include "search/query_generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tpc::search {

QueryGenerator::QueryGenerator(const InvertedIndex& index,
                               const QueryLogParams& params,
                               std::uint64_t seed)
    : index_(index),
      params_(params),
      rng_(seed),
      demand_(params.bulkMedianMs, params.bulkSigma, params.tailMedianMs,
              params.tailSigma, params.tailWeight, params.minDemandMs,
              params.maxDemandMs)
{
    TPC_CHECK(params.maxKeywords >= 1);
    TPC_CHECK(params.msPerKiloPosting > 0.0);
    termsByFreq_ = index_.termsByDescendingFrequency();
    // Drop terms with empty posting lists from the candidate pool.
    while (!termsByFreq_.empty() &&
           index_.documentFrequency(termsByFreq_.back()) == 0)
        termsByFreq_.pop_back();
    TPC_CHECK_MSG(!termsByFreq_.empty(), "index has no non-empty terms");
}

void
QueryGenerator::pickTerms(int k, double mass, std::vector<std::uint32_t>& out)
{
    out.clear();
    double remaining = std::max(mass, 1.0);
    for (int i = 0; i < k; ++i) {
        const int left = k - i;
        // Per-term posting budget with mild jitter so queries are not all
        // built from identical-frequency terms.
        const double target =
            (remaining / left) * std::exp(rng_.normal(0.0, 0.25));
        // termsByFreq_ is sorted by descending df: find the first rank at
        // or below the target frequency.
        const auto it = std::lower_bound(
            termsByFreq_.begin(), termsByFreq_.end(), target,
            [this](std::uint32_t term, double value) {
                return static_cast<double>(index_.documentFrequency(term)) >
                       value;
            });
        auto center = static_cast<std::size_t>(it - termsByFreq_.begin());
        if (center >= termsByFreq_.size())
            center = termsByFreq_.size() - 1;
        // Sample within a +-12% rank window (at least +-8 ranks) around the
        // target so repeated queries differ.
        const auto halfWindow = std::max<std::size_t>(8, center / 8);
        const std::size_t lo = center > halfWindow ? center - halfWindow : 0;
        const std::size_t hi =
            std::min(termsByFreq_.size() - 1, center + halfWindow);
        std::uint32_t term = 0;
        bool found = false;
        for (int attempt = 0; attempt < 16; ++attempt) {
            const auto rank = static_cast<std::size_t>(rng_.uniformInt(
                static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
            term = termsByFreq_[rank];
            if (std::find(out.begin(), out.end(), term) == out.end()) {
                found = true;
                break;
            }
        }
        if (!found)
            continue; // Window exhausted (tiny index); accept fewer terms.
        out.push_back(term);
        remaining = std::max(
            1.0, remaining - static_cast<double>(
                                 index_.documentFrequency(term)));
    }
    if (out.empty())
        out.push_back(termsByFreq_[0]);
}

Query
QueryGenerator::next()
{
    Query q;
    q.id = nextId_++;

    // 1. Latent true demand from the calibrated distribution.
    const double demandMs = demand_.sample(rng_);
    q.trueSequentialMs = demandMs;

    // 2. Everything observable about the query (keyword count, term
    //    choice) derives from `observableMs`. For most queries that is the
    //    true demand; feature-blind queries instead use an independent
    //    demand sample, so their cost is fundamentally unexplainable from
    //    features — which is what caps any predictor at the paper's
    //    Section 2.5 accuracy.
    const double observableMs = rng_.bernoulli(params_.featureBlindProbability)
                                    ? demand_.sample(rng_)
                                    : demandMs;

    // 3. Keyword count grows with the observable demand (plus jitter),
    //    clamped to [1, maxKeywords]. Short ~3.6 ms queries get 1-3
    //    keywords; 200 ms queries get ~7-10, matching the
    //    order-of-magnitude latency gap between 2- and 10-keyword queries
    //    cited in Section 2.3.
    const double kMean = 1.0 + 1.45 * std::log1p(observableMs / 2.0);
    const int k = static_cast<int>(std::clamp(
        std::round(kMean + rng_.normal(0.0, 0.7)), 1.0,
        static_cast<double>(params_.maxKeywords)));

    // 4. Posting mass implied by the observable demand, with feature
    //    noise. The noise multiplies the observable side only, so the
    //    true-demand marginal stays exactly the calibrated distribution.
    const double noise =
        std::exp(rng_.normal(0.0, params_.featureNoiseSigma));
    const double mass =
        (observableMs / params_.msPerKiloPosting) * 1000.0 * noise;

    pickTerms(k, mass, q.terms);
    return q;
}

std::vector<Query>
QueryGenerator::generateLog(std::size_t count)
{
    std::vector<Query> log;
    log.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        log.push_back(next());
    return log;
}

} // namespace tpc::search
