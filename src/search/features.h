/**
 * @file
 * Per-query feature extraction for the execution-time predictor.
 *
 * Mirrors the feature families of the predictor the paper adopts (Jeon et
 * al., SIGIR 2014): term features (document frequency, IDF) and query
 * features (keyword count, aggregate posting statistics, an estimate of
 * the conjunctive intersection cardinality).
 */
#pragma once

#include <string>
#include <vector>

#include "search/inverted_index.h"
#include "search/query.h"

namespace tpc::search {

/** Extracts a fixed-width numeric feature vector per query. */
class FeatureExtractor
{
  public:
    /** @param index Index providing term statistics (borrowed). */
    explicit FeatureExtractor(const InvertedIndex& index);

    /** Names of the extracted features, in order. */
    static std::vector<std::string> featureNames();

    /** Number of features produced. */
    static std::size_t featureCount() { return featureNames().size(); }

    /** Extracts the feature vector for one query. */
    std::vector<double> extract(const Query& query) const;

  private:
    const InvertedIndex& index_;
};

} // namespace tpc::search
