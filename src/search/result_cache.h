/**
 * @file
 * LRU query-result cache.
 *
 * Figure 1's query path begins "when a user sends a query and the query
 * response is not cached" — production serving stacks answer repeated
 * queries from a result cache in front of the aggregator, and only cache
 * misses reach the ISNs that TPC schedules. This module provides that
 * front-end: an LRU cache keyed by the query's term multiset.
 */
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "search/executor.h"
#include "search/query.h"

namespace tpc::search {

/** Hit/miss statistics of a cache instance. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    double hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/**
 * Fixed-capacity LRU cache mapping queries to search results.
 *
 * Not thread-safe: the front-end is a single dispatcher in this design
 * (callers needing concurrency shard by query hash).
 */
class ResultCache
{
  public:
    /** @param capacity Maximum cached entries (>= 1). */
    explicit ResultCache(std::size_t capacity);

    /**
     * Looks up a query; returns the cached result and refreshes its
     * recency, or nullptr on miss. The pointer is invalidated by the next
     * insert().
     */
    const SearchResult* lookup(const Query& query);

    /** Inserts (or refreshes) the result for a query, evicting the least
     *  recently used entry when at capacity. */
    void insert(const Query& query, SearchResult result);

    /** Canonical cache key: sorted term ids, order-insensitive. */
    static std::string keyFor(const Query& query);

    const CacheStats& stats() const { return stats_; }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Drops every entry (stats are retained). */
    void clear();

  private:
    struct Entry
    {
        std::string key;
        SearchResult result;
    };

    std::size_t capacity_;
    /** Most recently used at the front. */
    std::list<Entry> lru_;
    std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
    CacheStats stats_;
};

} // namespace tpc::search
