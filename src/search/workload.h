/**
 * @file
 * End-to-end search workload builder: corpus -> index -> query log ->
 * features -> trained execution-time predictor -> scheduling trace.
 *
 * This is the reconstruction of the paper's experimental input: a trace of
 * 100K queries, each with its true sequential service demand and the
 * demand predicted by the boosted-tree regressor, replayed by the server
 * experiments with Poisson arrivals.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/gbrt.h"
#include "ml/metrics.h"
#include "search/features.h"
#include "search/inverted_index.h"
#include "search/query_generator.h"

namespace tpc::search {

/** One trace entry consumed by the server experiments. */
struct TraceEntry
{
    /** True sequential service demand in ms (hidden from policies). */
    double trueMs = 0.0;
    /** Demand predicted by the trained regressor, in ms. */
    double predictedMs = 0.0;
    /** Number of keywords (kept for characterization output). */
    int numKeywords = 0;
};

/** Default predictor hyper-parameters: LAD boosting, which is robust to
 *  the feature-blind contamination in the workload (see QueryLogParams). */
ml::GbrtParams defaultPredictorParams();

/** Configuration for building a search workload. */
struct WorkloadParams
{
    CorpusParams corpus;
    QueryLogParams queryLog;
    ml::GbrtParams predictor = defaultPredictorParams();
    /** Queries used to train the predictor (disjoint from the trace). */
    std::size_t trainingQueries = 30000;
    /** Queries in the replayed trace. */
    std::size_t traceQueries = 100000;
    std::uint64_t seed = 20160402; // ASPLOS'16 dates, for flavor.
};

/** Predictor quality measured on the trace (Section 2.5 numbers). */
struct PredictorReport
{
    double l1ErrorMs = 0.0;
    double rmseMs = 0.0;
    ml::ThresholdClassification longAt80Ms;
};

/**
 * A built search workload: the index, the trace, and the predictor.
 *
 * Building is deterministic for a given WorkloadParams. The object is
 * immutable after construction and safe to share across threads.
 */
class SearchWorkload
{
  public:
    /** Builds everything; takes a few seconds at default scale. */
    explicit SearchWorkload(const WorkloadParams& params);

    const InvertedIndex& index() const { return *index_; }
    const std::vector<TraceEntry>& trace() const { return trace_; }
    const ml::Gbrt& predictor() const { return predictor_; }
    const WorkloadParams& params() const { return params_; }

    /** Predictor accuracy on the trace, as the paper reports it. */
    const PredictorReport& predictorReport() const { return report_; }

    /** The raw generated queries backing the trace (for real execution). */
    const std::vector<Query>& traceQueries() const { return queries_; }

  private:
    WorkloadParams params_;
    std::unique_ptr<InvertedIndex> index_;
    std::vector<Query> queries_;
    std::vector<TraceEntry> trace_;
    ml::Gbrt predictor_;
    PredictorReport report_;
};

} // namespace tpc::search
