/**
 * @file
 * Query-log generator calibrated to the paper's service-demand profile.
 *
 * Section 2.3 characterizes the production workload: mean demand 13.47 ms,
 * >= 85% of queries under 15 ms, 99th-percentile 200 ms (15x the mean, 56x
 * the median), maximum ~ a few hundred ms. The generator reproduces that
 * profile with a latent-demand construction:
 *
 *  1. Draw the query's true sequential demand s from a truncated lognormal
 *     whose parameters are fitted to the statistics above.
 *  2. Choose a keyword count k that grows with s (long queries have more
 *     keywords; Section 2.3 cites an order-of-magnitude latency gap between
 *     2- and 10-keyword queries).
 *  3. Pick k terms from document-frequency strata of the real synthetic
 *     index so the total posting mass approximates s / msPerKiloPosting,
 *     after a multiplicative lognormal feature-noise factor.
 *
 * The noise factor models the demand variance that query features cannot
 * explain (intersection selectivity, cache effects); it is what limits the
 * trained predictor to the paper's accuracy (L1 ~ 14 ms, recall ~ 0.86 at
 * the 80 ms threshold) rather than letting it become perfect.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "search/inverted_index.h"
#include "search/query.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace tpc::search {

/** Tunables for the query-log generator. */
struct QueryLogParams
{
    /**
     * True-demand distribution: a bimodal lognormal mixture calibrated to
     * Section 2.3 (median ~3.6 ms, mean ~13.5 ms, P99 ~200 ms, ~88% of
     * queries under 15 ms). Bulk component = short queries; tail
     * component = long queries.
     */
    double bulkMedianMs = 3.2;
    double bulkSigma = 0.8;
    double tailMedianMs = 60.0;
    double tailSigma = 0.9;
    double tailWeight = 0.107;
    /** Demand clipped to [minDemandMs, maxDemandMs]. */
    double minDemandMs = 0.3;
    double maxDemandMs = 400.0;
    /** Cost-model constant: milliseconds per 1000 postings scanned. */
    double msPerKiloPosting = 0.5;
    /**
     * Sigma of the multiplicative feature noise (predictor ceiling) for
     * queries whose features do carry the demand signal.
     */
    double featureNoiseSigma = 0.15;
    /**
     * Probability that a query is "feature-blind": its observable posting
     * mass is drawn independently of its true demand, so no regressor can
     * place it. This matches the error structure behind the paper's
     * Section 2.5 numbers — recall 0.86 with misses spread across the
     * whole long range (not just the 80 ms boundary), which is what makes
     * Pred collapse to near-Sequential at P99.9 (Figure 5) and gives
     * dynamic correction its 40-65 ms win (Figure 6).
     */
    double featureBlindProbability = 0.08;
    /** Maximum number of keywords. */
    int maxKeywords = 10;
};

/** Generates queries against a built index. */
class QueryGenerator
{
  public:
    /**
     * @param index  Index the queries will run against (borrowed; must
     *               outlive the generator).
     * @param params Demand-profile tunables.
     * @param seed   Seed for the generator's private random stream.
     */
    QueryGenerator(const InvertedIndex& index, const QueryLogParams& params,
                   std::uint64_t seed);

    /** Generates the next query; ids increase from 0. */
    Query next();

    /** Generates a full query log of @p count queries. */
    std::vector<Query> generateLog(std::size_t count);

    const QueryLogParams& params() const { return params_; }

  private:
    /** Picks @p k distinct terms totalling approximately @p mass postings. */
    void pickTerms(int k, double mass, std::vector<std::uint32_t>& out);

    const InvertedIndex& index_;
    QueryLogParams params_;
    util::Rng rng_;
    util::BimodalLognormal demand_;
    std::uint64_t nextId_ = 0;

    /** Terms sorted by descending document frequency. */
    std::vector<std::uint32_t> termsByFreq_;
    /** Prefix index: first rank whose df <= the stratum bound. */
    std::vector<std::size_t> strataStart_;
    std::vector<double> strataDf_;
};

} // namespace tpc::search
