/**
 * @file
 * A search query over the synthetic index.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace tpc::search {

/** A conjunctive keyword query. */
struct Query
{
    /** Stable id within a generated query log. */
    std::uint64_t id = 0;

    /** Distinct term ids; all must match a document (AND semantics). */
    std::vector<std::uint32_t> terms;

    /**
     * True sequential service demand in milliseconds under the calibrated
     * cost model. This is the quantity the predictor estimates and the
     * discrete-event server consumes; it is hidden from scheduling policies
     * except through the predictor (or the perfect-predictor oracle).
     */
    double trueSequentialMs = 0.0;
};

} // namespace tpc::search
