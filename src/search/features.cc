#include "search/features.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tpc::search {

FeatureExtractor::FeatureExtractor(const InvertedIndex& index) : index_(index)
{
}

std::vector<std::string>
FeatureExtractor::featureNames()
{
    return {
        "num_keywords",       // query length in terms
        "total_postings",     // sum of posting-list lengths
        "max_postings",       // longest posting list
        "min_postings",       // shortest posting list (intersection bound)
        "log_total_postings", // log scale of the dominant cost driver
        "sum_idf",            // aggregate rarity
        "min_idf",            // rarity of the most common term
        "max_idf",            // rarity of the rarest term
        "est_intersection",   // independence-model match-count estimate
        "rare_terms",         // terms with df below 0.1% of corpus
    };
}

std::vector<double>
FeatureExtractor::extract(const Query& query) const
{
    TPC_CHECK(!query.terms.empty());
    double totalPostings = 0.0;
    double maxPostings = 0.0;
    double minPostings = std::numeric_limits<double>::max();
    double sumIdf = 0.0;
    double minIdf = std::numeric_limits<double>::max();
    double maxIdf = 0.0;
    double rareTerms = 0.0;
    const double n = index_.documentCount();
    double logSelectivity = 0.0;

    for (std::uint32_t term : query.terms) {
        const double df = index_.documentFrequency(term);
        const double idf = index_.idf(term);
        totalPostings += df;
        maxPostings = std::max(maxPostings, df);
        minPostings = std::min(minPostings, df);
        sumIdf += idf;
        minIdf = std::min(minIdf, idf);
        maxIdf = std::max(maxIdf, idf);
        if (df < 0.001 * n)
            rareTerms += 1.0;
        // Independence model: P(term in doc) ~ df / N.
        logSelectivity += std::log(std::max(df, 0.5) / n);
    }

    const double estIntersection = n * std::exp(logSelectivity);
    return {
        static_cast<double>(query.terms.size()),
        totalPostings,
        maxPostings,
        minPostings,
        std::log1p(totalPostings),
        sumIdf,
        minIdf,
        maxIdf,
        estIntersection,
        rareTerms,
    };
}

} // namespace tpc::search
