#include "search/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>

#include "search/codec.h"
#include "util/distributions.h"
#include "util/logging.h"

namespace tpc::search {

// --- PostingList ------------------------------------------------------------

void
PostingList::add(std::uint32_t docId, std::uint8_t termFrequency)
{
    TPC_DCHECK(docIds_.empty() || docId > docIds_.back());
    docIds_.push_back(docId);
    tfs_.push_back(termFrequency);
}

std::size_t
PostingList::firstAtOrAfter(std::uint32_t docId) const
{
    const auto it =
        std::lower_bound(docIds_.begin(), docIds_.end(), docId);
    return static_cast<std::size_t>(it - docIds_.begin());
}

bool
PostingList::contains(std::uint32_t docId) const
{
    return std::binary_search(docIds_.begin(), docIds_.end(), docId);
}

// --- IndexBuilder -----------------------------------------------------------

IndexBuilder::IndexBuilder(std::uint32_t vocabularySize)
{
    index_.postings_.resize(vocabularySize);
    scratchCounts_.assign(vocabularySize, 0);
}

void
IndexBuilder::addDocument(const std::vector<std::uint32_t>& terms)
{
    const std::uint32_t docId = index_.documentCount_;
    // Count term frequencies via a scratch array reset per document.
    scratchTerms_.clear();
    for (std::uint32_t term : terms) {
        TPC_DCHECK(term < index_.postings_.size());
        if (scratchCounts_[term] == 0)
            scratchTerms_.push_back(term);
        ++scratchCounts_[term];
    }
    std::sort(scratchTerms_.begin(), scratchTerms_.end());
    for (std::uint32_t term : scratchTerms_) {
        const std::uint32_t tf = scratchCounts_[term];
        index_.postings_[term].add(
            docId,
            static_cast<std::uint8_t>(std::min<std::uint32_t>(tf, 255)));
        index_.postingCount_ += 1;
        scratchCounts_[term] = 0;
    }
    index_.docLengths_.push_back(
        static_cast<std::uint16_t>(std::min<std::size_t>(terms.size(),
                                                         65535)));
    ++index_.documentCount_;
}

InvertedIndex
IndexBuilder::finish()
{
    auto& idx = index_;
    if (idx.documentCount_ > 0) {
        std::uint64_t totalLength = 0;
        for (auto len : idx.docLengths_)
            totalLength += len;
        idx.avgDocLength_ = static_cast<double>(totalLength) /
                            static_cast<double>(idx.documentCount_);
    }
    return std::move(index_);
}

// --- InvertedIndex ----------------------------------------------------------

InvertedIndex
InvertedIndex::buildSynthetic(const CorpusParams& params, std::uint64_t seed)
{
    TPC_CHECK(params.numDocuments > 0);
    TPC_CHECK(params.vocabularySize > 0);
    util::Rng rng(seed);
    const util::ZipfDistribution termDist(params.vocabularySize,
                                          params.termSkew);
    const double lengthMu = std::log(params.medianDocLength);

    IndexBuilder builder(params.vocabularySize);
    std::vector<std::uint32_t> terms;
    for (std::uint32_t doc = 0; doc < params.numDocuments; ++doc) {
        const auto length = static_cast<std::size_t>(std::clamp(
            rng.lognormal(lengthMu, params.docLengthSigma), 4.0, 4000.0));
        terms.clear();
        terms.reserve(length);
        for (std::size_t i = 0; i < length; ++i)
            terms.push_back(
                static_cast<std::uint32_t>(termDist.sample(rng)));
        builder.addDocument(terms);
    }
    return builder.finish();
}

const PostingList&
InvertedIndex::postings(std::uint32_t term) const
{
    static const PostingList kEmpty;
    if (term >= postings_.size())
        return kEmpty;
    return postings_[term];
}

std::uint32_t
InvertedIndex::documentFrequency(std::uint32_t term) const
{
    return static_cast<std::uint32_t>(postings(term).size());
}

double
InvertedIndex::idf(std::uint32_t term) const
{
    const double df = documentFrequency(term);
    const double n = documentCount_;
    return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

std::vector<std::uint32_t>
InvertedIndex::termsByDescendingFrequency() const
{
    std::vector<std::uint32_t> order(postings_.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                         return postings_[a].size() > postings_[b].size();
                     });
    return order;
}

namespace {

/** Magic prefix guarding the full-index format. */
constexpr std::uint64_t kIndexMagic = 0x5450434944583101ull; // "TPCIDX1."

} // namespace

std::vector<std::uint8_t>
InvertedIndex::serialize() const
{
    std::vector<std::uint8_t> blob;
    varbyteEncode(kIndexMagic, blob);
    varbyteEncode(documentCount_, blob);
    varbyteEncode(postings_.size(), blob);
    for (std::uint32_t doc = 0; doc < documentCount_; ++doc)
        varbyteEncode(docLengths_[doc], blob);
    for (const auto& list : postings_) {
        varbyteEncode(list.size(), blob);
        std::uint32_t prev = 0;
        for (std::size_t i = 0; i < list.size(); ++i) {
            const std::uint32_t id = list.docIds()[i];
            varbyteEncode(i == 0 ? id : id - prev, blob);
            prev = id;
        }
        for (std::size_t i = 0; i < list.size(); ++i)
            blob.push_back(list.termFrequency(i));
    }
    return blob;
}

InvertedIndex
InvertedIndex::deserialize(const std::vector<std::uint8_t>& blob)
{
    std::size_t offset = 0;
    const std::uint64_t magic = varbyteDecode(blob, offset);
    TPC_CHECK_MSG(magic == kIndexMagic, "not a TPC index blob");

    InvertedIndex index;
    index.documentCount_ =
        static_cast<std::uint32_t>(varbyteDecode(blob, offset));
    const std::uint64_t vocab = varbyteDecode(blob, offset);
    index.docLengths_.reserve(index.documentCount_);
    std::uint64_t totalLength = 0;
    for (std::uint32_t doc = 0; doc < index.documentCount_; ++doc) {
        const auto length =
            static_cast<std::uint16_t>(varbyteDecode(blob, offset));
        index.docLengths_.push_back(length);
        totalLength += length;
    }
    index.postings_.resize(vocab);
    for (std::uint64_t term = 0; term < vocab; ++term) {
        const std::uint64_t count = varbyteDecode(blob, offset);
        std::vector<std::uint32_t> ids;
        ids.reserve(count);
        std::uint32_t prev = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            const auto delta =
                static_cast<std::uint32_t>(varbyteDecode(blob, offset));
            prev = (i == 0) ? delta : prev + delta;
            ids.push_back(prev);
        }
        PostingList& list = index.postings_[term];
        for (std::uint64_t i = 0; i < count; ++i) {
            TPC_CHECK_MSG(offset < blob.size(), "truncated index blob");
            list.add(ids[i], blob[offset++]);
        }
        index.postingCount_ += count;
    }
    if (index.documentCount_ > 0)
        index.avgDocLength_ = static_cast<double>(totalLength) /
                              static_cast<double>(index.documentCount_);
    TPC_CHECK_MSG(offset == blob.size(), "trailing bytes in index blob");
    return index;
}

void
InvertedIndex::saveToFile(const std::string& path) const
{
    const auto blob = serialize();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        util::fatal("cannot open index file for writing: " + path);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out)
        util::fatal("failed writing index file: " + path);
}

InvertedIndex
InvertedIndex::loadFromFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        util::fatal("cannot open index file: " + path);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<std::uint8_t> blob(size);
    in.read(reinterpret_cast<char*>(blob.data()),
            static_cast<std::streamsize>(size));
    if (!in)
        util::fatal("failed reading index file: " + path);
    return deserialize(blob);
}

std::vector<std::uint8_t>
InvertedIndex::serializeDocIds() const
{
    std::vector<std::uint8_t> blob;
    varbyteEncode(postings_.size(), blob);
    for (const auto& list : postings_) {
        const auto encoded = encodeDocIds(list.docIds());
        blob.insert(blob.end(), encoded.begin(), encoded.end());
    }
    return blob;
}

bool
InvertedIndex::verifySerializedDocIds(
    const std::vector<std::uint8_t>& blob) const
{
    std::size_t offset = 0;
    const std::uint64_t termCount = varbyteDecode(blob, offset);
    if (termCount != postings_.size())
        return false;
    for (const auto& list : postings_) {
        const std::uint64_t count = varbyteDecode(blob, offset);
        if (count != list.size())
            return false;
        std::uint32_t prev = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            const auto delta =
                static_cast<std::uint32_t>(varbyteDecode(blob, offset));
            prev = (i == 0) ? delta : prev + delta;
            if (prev != list.docIds()[i])
                return false;
        }
    }
    return offset == blob.size();
}

} // namespace tpc::search
