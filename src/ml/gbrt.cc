#include "ml/gbrt.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <string>

#include "util/logging.h"
#include "util/rng.h"

namespace tpc::ml {

void
Gbrt::train(const Dataset& data, const GbrtParams& params)
{
    trainImpl(data, nullptr, params);
}

void
Gbrt::train(const Dataset& data, const Dataset& validation,
            const GbrtParams& params)
{
    trainImpl(data, &validation, params);
}

void
Gbrt::trainImpl(const Dataset& data, const Dataset* validation,
                const GbrtParams& params)
{
    TPC_CHECK(!data.empty());
    TPC_CHECK(params.numTrees >= 0);
    TPC_CHECK(params.learningRate > 0.0);
    TPC_CHECK(params.subsample > 0.0 && params.subsample <= 1.0);

    trees_.clear();
    learningRate_ = params.learningRate;

    const std::size_t n = data.rowCount();
    const bool lad = (params.loss == GbrtLoss::AbsoluteError) ||
                     (params.loss == GbrtLoss::Quantile);
    const double tau = (params.loss == GbrtLoss::Quantile)
                           ? params.quantile
                           : 0.5;
    TPC_CHECK(tau > 0.0 && tau < 1.0);
    if (lad) {
        // Base score: the target tau-quantile (median for LAD),
        // interpolated between straddling order statistics.
        std::vector<double> sorted(data.targets());
        const double pos = tau * static_cast<double>(sorted.size() - 1);
        const auto lo = static_cast<std::ptrdiff_t>(pos);
        const double frac = pos - static_cast<double>(lo);
        std::nth_element(sorted.begin(), sorted.begin() + lo, sorted.end());
        baseScore_ = sorted[static_cast<std::size_t>(lo)];
        if (frac > 0.0) {
            const double upper =
                *std::min_element(sorted.begin() + lo + 1, sorted.end());
            baseScore_ += frac * (upper - baseScore_);
        }
    } else {
        baseScore_ = std::accumulate(data.targets().begin(),
                                     data.targets().end(), 0.0) /
                     static_cast<double>(n);
    }

    // Current ensemble prediction per row. For L2, trees fit the raw
    // residuals (the negative gradients); for LAD, trees split on the sign
    // gradients and take per-leaf medians of the raw residuals.
    std::vector<double> prediction(n, baseScore_);
    std::vector<double> residual(n);
    std::vector<double> gradient(n);

    const FeatureBinner binner(data, 255);
    const std::vector<std::uint16_t> binned = binner.binDataset(data);

    TreeParams treeParams = params.tree;
    if (lad) {
        treeParams.leafEstimator = LeafEstimator::Quantile;
        treeParams.leafQuantile = tau;
    }

    // Early-stopping bookkeeping against the validation set.
    std::vector<double> validationPrediction;
    if (validation)
        validationPrediction.assign(validation->rowCount(), baseScore_);
    double bestValidationL1 = std::numeric_limits<double>::max();
    std::size_t bestTreeCount = 0;
    int roundsSinceImprovement = 0;

    util::Rng rng(params.seed);
    for (int t = 0; t < params.numTrees; ++t) {
        for (std::size_t r = 0; r < n; ++r) {
            residual[r] = data.target(r) - prediction[r];
            // Pinball-loss negative gradient: tau above the prediction,
            // tau-1 below (LAD is tau = 0.5 up to scale).
            gradient[r] = lad ? (residual[r] > 0.0   ? tau
                                 : residual[r] < 0.0 ? tau - 1.0
                                                     : 0.0)
                              : residual[r];
        }

        // Row subsampling: zero the gradient of dropped rows — fitting on
        // the full index set with masked responses keeps the
        // binned-histogram path simple while still decorrelating trees.
        if (params.subsample < 1.0) {
            for (std::size_t r = 0; r < n; ++r) {
                if (!rng.bernoulli(params.subsample))
                    gradient[r] = 0.0;
            }
        }

        RegressionTree tree;
        tree.fit(data, binned, binner, gradient, treeParams,
                 lad ? &residual : nullptr);
        for (std::size_t r = 0; r < n; ++r)
            prediction[r] += learningRate_ * tree.predict(data.row(r));

        if (validation && params.earlyStoppingRounds > 0) {
            double l1 = 0.0;
            for (std::size_t r = 0; r < validation->rowCount(); ++r) {
                validationPrediction[r] +=
                    learningRate_ * tree.predict(validation->row(r));
                l1 += std::abs(validationPrediction[r] -
                               validation->target(r));
            }
            l1 /= static_cast<double>(validation->rowCount());
            if (l1 < bestValidationL1 - 1e-12) {
                bestValidationL1 = l1;
                bestTreeCount = trees_.size() + 1;
                roundsSinceImprovement = 0;
            } else if (++roundsSinceImprovement >=
                       params.earlyStoppingRounds) {
                trees_.push_back(std::move(tree));
                break;
            }
        }
        trees_.push_back(std::move(tree));
    }

    if (validation && params.earlyStoppingRounds > 0 &&
        bestTreeCount < trees_.size()) {
        // Truncate to the best validation round.
        trees_.resize(bestTreeCount);
    }
}

std::vector<double>
Gbrt::featureImportance(std::size_t featureCount) const
{
    std::vector<double> gains(featureCount, 0.0);
    for (const auto& tree : trees_)
        tree.accumulateGain(gains);
    double total = 0.0;
    for (double g : gains)
        total += g;
    if (total > 0.0) {
        for (double& g : gains)
            g /= total;
    }
    return gains;
}

std::string
Gbrt::saveText() const
{
    std::string out;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "gbrt v1 %.17g %.17g %zu\n", baseScore_,
                  learningRate_, trees_.size());
    out += buf;
    for (const auto& tree : trees_)
        tree.appendText(out);
    return out;
}

Gbrt
Gbrt::loadText(const std::string& text)
{
    Gbrt model;
    std::size_t cursor = text.find('\n');
    TPC_CHECK_MSG(cursor != std::string::npos, "empty gbrt text");
    std::size_t treeCount = 0;
    TPC_CHECK_MSG(std::sscanf(text.c_str(), "gbrt v1 %lg %lg %zu",
                              &model.baseScore_, &model.learningRate_,
                              &treeCount) == 3,
                  "bad gbrt header");
    ++cursor;
    model.trees_.reserve(treeCount);
    for (std::size_t t = 0; t < treeCount; ++t)
        model.trees_.push_back(RegressionTree::parseText(text, cursor));
    return model;
}

double
Gbrt::predict(const double* features) const
{
    double score = baseScore_;
    for (const auto& tree : trees_)
        score += learningRate_ * tree.predict(features);
    return score;
}

std::vector<double>
Gbrt::predictAll(const Dataset& data) const
{
    std::vector<double> out(data.rowCount());
    for (std::size_t r = 0; r < data.rowCount(); ++r)
        out[r] = predict(data.row(r));
    return out;
}

} // namespace tpc::ml
