/**
 * @file
 * Gradient-boosted regression trees (L2 loss), the execution-time
 * predictor used by TPC and the Pred baseline.
 *
 * Matches the predictor architecture of Jeon et al. (SIGIR 2014) that the
 * paper adopts: a boosted-tree regressor over query features producing the
 * predicted sequential execution time.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.h"
#include "ml/regression_tree.h"

namespace tpc::ml {

/** Loss function minimized by the ensemble. */
enum class GbrtLoss {
    /** Squared error: trees fit raw residuals, leaves are means. */
    SquaredError,
    /**
     * Absolute error (LAD): trees split on sign gradients and leaves take
     * the median residual. Robust to contaminated targets — e.g. queries
     * whose features carry no demand signal — which makes it the right
     * loss for the execution-time predictor.
     */
    AbsoluteError,
    /**
     * Pinball loss at GbrtParams::quantile: the model estimates the
     * conditional tau-quantile instead of the center. A conservative
     * execution-time predictor (tau > 0.5) trades extra parallelism on
     * over-estimated requests for fewer mispredicted-long requests — see
     * bench_ext_quantile.
     */
    Quantile,
};

/** Training hyper-parameters for the boosted ensemble. */
struct GbrtParams
{
    int numTrees = 120;
    double learningRate = 0.1;
    GbrtLoss loss = GbrtLoss::SquaredError;
    /** Target quantile for GbrtLoss::Quantile. */
    double quantile = 0.5;
    TreeParams tree;
    /** Row subsampling fraction per tree (stochastic gradient boosting). */
    double subsample = 1.0;
    /** Seed for subsampling. */
    std::uint64_t seed = 42;
    /**
     * Early stopping: when a validation set is supplied to train(), stop
     * after this many consecutive trees without improving validation L1.
     * 0 disables early stopping.
     */
    int earlyStoppingRounds = 0;
};

/** A fitted boosted-tree regressor. */
class Gbrt
{
  public:
    /** Trains on the dataset with the configured loss. */
    void train(const Dataset& data, const GbrtParams& params);

    /**
     * Trains with early stopping against a validation set: after each
     * tree, validation L1 is evaluated; training stops when it has not
     * improved for params.earlyStoppingRounds consecutive trees, and the
     * ensemble is truncated to the best round.
     */
    void train(const Dataset& data, const Dataset& validation,
               const GbrtParams& params);

    /** Predicts the target for one raw feature vector. */
    double predict(const double* features) const;

    /** Predicts the target for one raw feature vector. */
    double predict(const std::vector<double>& features) const
    {
        return predict(features.data());
    }

    /** Predicts every row of a dataset. */
    std::vector<double> predictAll(const Dataset& data) const;

    std::size_t treeCount() const { return trees_.size(); }
    bool trained() const { return !trees_.empty() || baseScore_ != 0.0; }
    double baseScore() const { return baseScore_; }
    double learningRate() const { return learningRate_; }

    /** The fitted trees, for ensemble compilers (predict::FlatForest). */
    const std::vector<RegressionTree>& trees() const { return trees_; }

    /**
     * Split-gain feature importance: total variance-reduction gain
     * attributed to each feature across the ensemble, normalized to sum
     * to 1 (all zeros if the ensemble never split).
     */
    std::vector<double> featureImportance(std::size_t featureCount) const;

    /**
     * Serializes the fitted model to a portable text format (one line per
     * node). Round-trips exactly through loadText.
     */
    std::string saveText() const;

    /** Restores a model produced by saveText. Fatal on malformed input. */
    static Gbrt loadText(const std::string& text);

  private:
    void trainImpl(const Dataset& data, const Dataset* validation,
                   const GbrtParams& params);

    double baseScore_ = 0.0;
    double learningRate_ = 0.1;
    std::vector<RegressionTree> trees_;
};

} // namespace tpc::ml
