#include "ml/dataset.h"

#include "util/logging.h"

namespace tpc::ml {

Dataset::Dataset(std::vector<std::string> featureNames)
    : featureNames_(std::move(featureNames))
{
    TPC_CHECK(!featureNames_.empty());
}

void
Dataset::addRow(const std::vector<double>& features, double target)
{
    TPC_CHECK_MSG(features.size() == featureCount(),
                  "feature vector width mismatch");
    features_.insert(features_.end(), features.begin(), features.end());
    targets_.push_back(target);
}

std::pair<Dataset, Dataset>
Dataset::split(double testFraction, util::Rng& rng) const
{
    TPC_CHECK(testFraction >= 0.0 && testFraction <= 1.0);
    Dataset train(featureNames_);
    Dataset test(featureNames_);
    std::vector<double> buf(featureCount());
    for (std::size_t r = 0; r < rowCount(); ++r) {
        for (std::size_t f = 0; f < featureCount(); ++f)
            buf[f] = feature(r, f);
        if (rng.bernoulli(testFraction))
            test.addRow(buf, target(r));
        else
            train.addRow(buf, target(r));
    }
    return {std::move(train), std::move(test)};
}

} // namespace tpc::ml
