/**
 * @file
 * Regression and threshold-classification metrics for predictor evaluation.
 *
 * Section 2.5 of the paper evaluates the predictor both as a regressor
 * (L1 error, ~14 ms) and as a long-query classifier at an 80 ms threshold
 * (recall 0.86 / precision 0.91). These helpers compute the same numbers.
 */
#pragma once

#include <string>
#include <vector>

namespace tpc::ml {

/** Mean absolute error between predictions and truths. */
double meanAbsoluteError(const std::vector<double>& predicted,
                         const std::vector<double>& actual);

/** Root-mean-squared error between predictions and truths. */
double rootMeanSquaredError(const std::vector<double>& predicted,
                            const std::vector<double>& actual);

/** Confusion counts for "is long" classification at a latency threshold. */
struct ThresholdClassification
{
    std::size_t truePositives = 0;
    std::size_t falsePositives = 0;
    std::size_t trueNegatives = 0;
    std::size_t falseNegatives = 0;

    /** Fraction of detections that are truly long. */
    double precision() const;

    /** Fraction of truly long items that were detected. */
    double recall() const;

    /** Harmonic mean of precision and recall. */
    double f1() const;

    /** Fraction of all items that are long but predicted short. */
    double missedLongFraction() const;

    std::size_t total() const;

    std::string toString() const;
};

/**
 * Classifies each item as long when its value exceeds @p threshold and
 * tallies predicted-vs-actual agreement.
 */
ThresholdClassification classifyAtThreshold(
    const std::vector<double>& predicted, const std::vector<double>& actual,
    double threshold);

} // namespace tpc::ml
