/**
 * @file
 * Dense feature matrix + regression targets for the predictor substrate.
 *
 * The paper predicts per-query sequential execution time with a
 * boosted-tree regressor (Jeon et al., SIGIR 2014). This module provides
 * the training-data container used by tpc::ml::Gbrt.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tpc::ml {

/** Row-major dense dataset with one double target per row. */
class Dataset
{
  public:
    /** @param featureNames Column names; fixes the feature count. */
    explicit Dataset(std::vector<std::string> featureNames);

    /** Appends one example; features.size() must equal featureCount(). */
    void addRow(const std::vector<double>& features, double target);

    std::size_t rowCount() const { return targets_.size(); }
    std::size_t featureCount() const { return featureNames_.size(); }
    bool empty() const { return targets_.empty(); }

    /** Value of feature f for row r. */
    double feature(std::size_t row, std::size_t f) const
    {
        return features_[row * featureCount() + f];
    }

    /** Target of row r. */
    double target(std::size_t row) const { return targets_[row]; }

    const std::vector<std::string>& featureNames() const
    {
        return featureNames_;
    }

    /** Pointer to the start of row r's features (featureCount() values). */
    const double* row(std::size_t r) const
    {
        return features_.data() + r * featureCount();
    }

    const std::vector<double>& targets() const { return targets_; }

    /**
     * Splits rows into train/test by Bernoulli(testFraction) draws.
     * Deterministic for a given rng seed.
     */
    std::pair<Dataset, Dataset> split(double testFraction,
                                      util::Rng& rng) const;

  private:
    std::vector<std::string> featureNames_;
    std::vector<double> features_;
    std::vector<double> targets_;
};

} // namespace tpc::ml
