/**
 * @file
 * Histogram-based CART regression tree, the weak learner inside Gbrt.
 *
 * Features are quantile-binned once per training run (FeatureBinner);
 * each node then scans per-bin (count, sum) histograms to find the best
 * variance-reducing split. This is the standard construction used by
 * LightGBM-style learners and keeps training fast enough to run inside
 * the benchmark binaries.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.h"

namespace tpc::ml {

/** Per-feature quantile binning shared by all trees of an ensemble. */
class FeatureBinner
{
  public:
    /**
     * Computes at most @p maxBins quantile bin edges per feature from the
     * dataset.
     */
    FeatureBinner(const Dataset& data, int maxBins = 64);

    /** Number of bins for feature f (>= 1). */
    int binCount(std::size_t f) const
    {
        return static_cast<int>(edges_[f].size()) + 1;
    }

    /** Maps a raw feature value to its bin index in [0, binCount(f)). */
    int bin(std::size_t f, double value) const;

    /**
     * Upper edge separating bin b from bin b+1 for feature f; splits are
     * expressed as "value <= edge goes left".
     */
    double edge(std::size_t f, int b) const { return edges_[f][b]; }

    std::size_t featureCount() const { return edges_.size(); }

    /** Bins every row of the dataset; result is row-major uint16. */
    std::vector<std::uint16_t> binDataset(const Dataset& data) const;

  private:
    std::vector<std::vector<double>> edges_;
};

/** How a leaf's response is estimated from the samples it holds. */
enum class LeafEstimator {
    /** Regularized mean (classic L2 boosting). */
    Mean,
    /**
     * Order statistic of the leaf targets at TreeParams::leafQuantile
     * (0.5 = median, giving robust L1/LAD boosting; other quantiles give
     * pinball-loss quantile regression).
     */
    Quantile,
};

/** Hyper-parameters for a single tree fit. */
struct TreeParams
{
    int maxDepth = 6;
    int minSamplesLeaf = 20;
    /** L2 regularization added to leaf denominators. */
    double lambda = 1.0;
    /** Minimum gain required to split. */
    double minGain = 1e-9;
    LeafEstimator leafEstimator = LeafEstimator::Mean;
    /** Order statistic used by LeafEstimator::Quantile. */
    double leafQuantile = 0.5;
};

/**
 * A fitted regression tree. Internal nodes compare a raw feature value
 * against a threshold; leaves carry the fitted response.
 */
class RegressionTree
{
  public:
    /**
     * Fits the tree to @p targets (residuals, when used inside boosting).
     *
     * @param data        Raw dataset (for thresholds only).
     * @param binned      Row-major binned features from FeatureBinner.
     * @param binner      The binner that produced @p binned.
     * @param targets     Split-finding response per row (for L1 boosting,
     *                    the sign gradients).
     * @param params      Depth/regularization controls.
     * @param leafTargets Optional response used only for leaf values (for
     *                    L1 boosting, the raw residuals whose per-leaf
     *                    median becomes the step). Defaults to @p targets.
     */
    void fit(const Dataset& data, const std::vector<std::uint16_t>& binned,
             const FeatureBinner& binner, const std::vector<double>& targets,
             const TreeParams& params,
             const std::vector<double>* leafTargets = nullptr);

    /** Predicts the response for one raw feature vector. */
    double predict(const double* features) const;

    /** Read-only view of one node, for ensemble compilers. */
    struct NodeView
    {
        /** Split feature; < 0 for leaves. */
        int feature;
        double threshold;
        double value;
        int left;
        int right;
    };

    /** The node at index @p i; index 0 is the root. */
    NodeView node(std::size_t i) const
    {
        const Node& n = nodes_[i];
        return {n.feature, n.threshold, n.value, n.left, n.right};
    }

    /** Number of nodes (internal + leaves); 0 before fit. */
    std::size_t nodeCount() const { return nodes_.size(); }

    /** Number of leaf nodes. */
    std::size_t leafCount() const;

    /** Maximum root-to-leaf depth of the fitted tree. */
    int depth() const;

    /** Adds each internal node's split gain to gains[feature]. */
    void accumulateGain(std::vector<double>& gains) const;

    /** Appends a text serialization of the tree to @p out. */
    void appendText(std::string& out) const;

    /**
     * Parses one tree from lines starting at @p cursor within @p text;
     * advances the cursor past the tree. Fatal on malformed input.
     */
    static RegressionTree parseText(const std::string& text,
                                    std::size_t& cursor);

  private:
    struct Node
    {
        // Leaf when feature < 0.
        int feature = -1;
        double threshold = 0.0;
        double value = 0.0;
        int left = -1;
        int right = -1;
        /** Variance-reduction gain of this split (0 for leaves). */
        double gain = 0.0;
    };

    int buildNode(const Dataset& data,
                  const std::vector<std::uint16_t>& binned,
                  const FeatureBinner& binner,
                  const std::vector<double>& targets,
                  const std::vector<double>& leafTargets,
                  std::vector<std::uint32_t>& indices, std::size_t begin,
                  std::size_t end, int depthLeft, const TreeParams& params);

    int depthOf(int node) const;

    std::vector<Node> nodes_;
};

} // namespace tpc::ml
