#include "ml/regression_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>

#include "util/logging.h"

namespace tpc::ml {

// --- FeatureBinner ----------------------------------------------------------

FeatureBinner::FeatureBinner(const Dataset& data, int maxBins)
{
    TPC_CHECK(maxBins >= 2);
    TPC_CHECK(!data.empty());
    const std::size_t n = data.rowCount();
    edges_.resize(data.featureCount());
    std::vector<double> column(n);
    for (std::size_t f = 0; f < data.featureCount(); ++f) {
        for (std::size_t r = 0; r < n; ++r)
            column[r] = data.feature(r, f);
        std::sort(column.begin(), column.end());
        // Candidate edges at evenly spaced quantiles; dedupe so constant
        // or few-valued features get fewer bins.
        std::vector<double>& edges = edges_[f];
        for (int b = 1; b < maxBins; ++b) {
            const std::size_t idx = std::min<std::size_t>(
                n - 1, (n * static_cast<std::size_t>(b)) /
                           static_cast<std::size_t>(maxBins));
            const double candidate = column[idx];
            if (edges.empty() || candidate > edges.back())
                edges.push_back(candidate);
        }
        // Drop a trailing edge equal to the max so the last bin is nonempty.
        while (!edges.empty() && edges.back() >= column.back())
            edges.pop_back();
    }
}

int
FeatureBinner::bin(std::size_t f, double value) const
{
    // Bin i holds values v with edges[i-1] < v <= edges[i]; the first edge
    // not less than the value identifies the bin, and values above every
    // edge land in the last bin (index == edges.size()).
    const auto& edges = edges_[f];
    const auto it = std::lower_bound(edges.begin(), edges.end(), value);
    return static_cast<int>(it - edges.begin());
}

std::vector<std::uint16_t>
FeatureBinner::binDataset(const Dataset& data) const
{
    TPC_CHECK(data.featureCount() == featureCount());
    std::vector<std::uint16_t> binned(data.rowCount() * data.featureCount());
    for (std::size_t r = 0; r < data.rowCount(); ++r)
        for (std::size_t f = 0; f < data.featureCount(); ++f)
            binned[r * data.featureCount() + f] =
                static_cast<std::uint16_t>(bin(f, data.feature(r, f)));
    return binned;
}

// --- RegressionTree ---------------------------------------------------------

void
RegressionTree::fit(const Dataset& data,
                    const std::vector<std::uint16_t>& binned,
                    const FeatureBinner& binner,
                    const std::vector<double>& targets,
                    const TreeParams& params,
                    const std::vector<double>* leafTargets)
{
    TPC_CHECK(targets.size() == data.rowCount());
    TPC_CHECK(binned.size() == data.rowCount() * data.featureCount());
    const std::vector<double>& leaves = leafTargets ? *leafTargets : targets;
    TPC_CHECK(leaves.size() == data.rowCount());
    nodes_.clear();
    std::vector<std::uint32_t> indices(data.rowCount());
    std::iota(indices.begin(), indices.end(), 0);
    buildNode(data, binned, binner, targets, leaves, indices, 0,
              indices.size(), params.maxDepth, params);
}

int
RegressionTree::buildNode(const Dataset& data,
                          const std::vector<std::uint16_t>& binned,
                          const FeatureBinner& binner,
                          const std::vector<double>& targets,
                          const std::vector<double>& leafTargets,
                          std::vector<std::uint32_t>& indices,
                          std::size_t begin, std::size_t end, int depthLeft,
                          const TreeParams& params)
{
    const std::size_t n = end - begin;
    TPC_DCHECK(n > 0);
    const std::size_t featureCount = data.featureCount();

    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i)
        sum += targets[indices[i]];

    const int nodeId = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    if (params.leafEstimator == LeafEstimator::Quantile) {
        // Interpolated order statistic of the leaf targets: the median is
        // robust to contaminated responses; other quantiles implement
        // pinball-loss quantile regression. Interpolating between the two
        // straddling order statistics matters: rounding to one side is a
        // per-tree bias that boosting accumulates across the ensemble.
        std::vector<double> values;
        values.reserve(n);
        for (std::size_t i = begin; i < end; ++i)
            values.push_back(leafTargets[indices[i]]);
        const double pos =
            params.leafQuantile * static_cast<double>(values.size() - 1);
        const auto lo = static_cast<std::ptrdiff_t>(pos);
        const double frac = pos - static_cast<double>(lo);
        std::nth_element(values.begin(), values.begin() + lo, values.end());
        double value = values[static_cast<std::size_t>(lo)];
        if (frac > 0.0) {
            const double upper =
                *std::min_element(values.begin() + lo + 1, values.end());
            value += frac * (upper - value);
        }
        nodes_[nodeId].value = value;
    } else {
        double leafSum = 0.0;
        for (std::size_t i = begin; i < end; ++i)
            leafSum += leafTargets[indices[i]];
        nodes_[nodeId].value =
            leafSum / (static_cast<double>(n) + params.lambda);
    }

    if (depthLeft <= 0 ||
        n < 2 * static_cast<std::size_t>(params.minSamplesLeaf)) {
        return nodeId;
    }

    // Find the best (feature, bin) split by variance reduction:
    // gain = sumL^2/(nL+lambda) + sumR^2/(nR+lambda) - sum^2/(n+lambda).
    const double parentScore =
        sum * sum / (static_cast<double>(n) + params.lambda);
    double bestGain = params.minGain;
    int bestFeature = -1;
    int bestBin = -1;

    std::vector<double> binSum;
    std::vector<std::uint32_t> binCount;
    for (std::size_t f = 0; f < featureCount; ++f) {
        const int bins = binner.binCount(f);
        if (bins < 2)
            continue;
        binSum.assign(bins, 0.0);
        binCount.assign(bins, 0);
        for (std::size_t i = begin; i < end; ++i) {
            const std::uint32_t row = indices[i];
            const std::uint16_t b = binned[row * featureCount + f];
            binSum[b] += targets[row];
            binCount[b] += 1;
        }
        double leftSum = 0.0;
        std::uint32_t leftCount = 0;
        // Split after bin b: bins [0..b] go left (value <= edge(f, b)).
        for (int b = 0; b < bins - 1; ++b) {
            leftSum += binSum[b];
            leftCount += binCount[b];
            const std::uint32_t rightCount =
                static_cast<std::uint32_t>(n) - leftCount;
            if (leftCount < static_cast<std::uint32_t>(params.minSamplesLeaf) ||
                rightCount < static_cast<std::uint32_t>(params.minSamplesLeaf))
                continue;
            const double rightSum = sum - leftSum;
            const double score =
                leftSum * leftSum /
                    (static_cast<double>(leftCount) + params.lambda) +
                rightSum * rightSum /
                    (static_cast<double>(rightCount) + params.lambda);
            const double gain = score - parentScore;
            if (gain > bestGain) {
                bestGain = gain;
                bestFeature = static_cast<int>(f);
                bestBin = b;
            }
        }
    }

    if (bestFeature < 0)
        return nodeId;

    // Partition indices in place around the chosen split.
    const double threshold = binner.edge(bestFeature, bestBin);
    const auto mid = std::partition(
        indices.begin() + static_cast<std::ptrdiff_t>(begin),
        indices.begin() + static_cast<std::ptrdiff_t>(end),
        [&](std::uint32_t row) {
            return binned[row * featureCount +
                          static_cast<std::size_t>(bestFeature)] <=
                   static_cast<std::uint16_t>(bestBin);
        });
    const auto midIdx =
        static_cast<std::size_t>(mid - indices.begin());
    if (midIdx == begin || midIdx == end)
        return nodeId; // Degenerate partition; keep as leaf.

    nodes_[nodeId].feature = bestFeature;
    nodes_[nodeId].threshold = threshold;
    nodes_[nodeId].gain = bestGain;
    const int left = buildNode(data, binned, binner, targets, leafTargets,
                               indices, begin, midIdx, depthLeft - 1, params);
    const int right = buildNode(data, binned, binner, targets, leafTargets,
                                indices, midIdx, end, depthLeft - 1, params);
    nodes_[nodeId].left = left;
    nodes_[nodeId].right = right;
    return nodeId;
}

double
RegressionTree::predict(const double* features) const
{
    TPC_DCHECK(!nodes_.empty());
    int node = 0;
    while (nodes_[node].feature >= 0) {
        const auto& n = nodes_[node];
        node = (features[n.feature] <= n.threshold) ? n.left : n.right;
    }
    return nodes_[node].value;
}

std::size_t
RegressionTree::leafCount() const
{
    std::size_t leaves = 0;
    for (const auto& n : nodes_)
        if (n.feature < 0)
            ++leaves;
    return leaves;
}

int
RegressionTree::depthOf(int node) const
{
    const auto& n = nodes_[node];
    if (n.feature < 0)
        return 1;
    return 1 + std::max(depthOf(n.left), depthOf(n.right));
}

int
RegressionTree::depth() const
{
    if (nodes_.empty())
        return 0;
    return depthOf(0);
}

void
RegressionTree::accumulateGain(std::vector<double>& gains) const
{
    for (const auto& node : nodes_) {
        if (node.feature >= 0) {
            TPC_CHECK(static_cast<std::size_t>(node.feature) < gains.size());
            gains[static_cast<std::size_t>(node.feature)] += node.gain;
        }
    }
}

void
RegressionTree::appendText(std::string& out) const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf), "tree %zu\n", nodes_.size());
    out += buf;
    for (const auto& node : nodes_) {
        std::snprintf(buf, sizeof(buf), "%d %.17g %.17g %d %d %.17g\n",
                      node.feature, node.threshold, node.value, node.left,
                      node.right, node.gain);
        out += buf;
    }
}

RegressionTree
RegressionTree::parseText(const std::string& text, std::size_t& cursor)
{
    auto nextLine = [&]() -> std::string {
        const std::size_t end = text.find('\n', cursor);
        TPC_CHECK_MSG(end != std::string::npos, "truncated tree text");
        std::string line = text.substr(cursor, end - cursor);
        cursor = end + 1;
        return line;
    };

    const std::string header = nextLine();
    std::size_t count = 0;
    TPC_CHECK_MSG(std::sscanf(header.c_str(), "tree %zu", &count) == 1,
                  "bad tree header: " + header);
    RegressionTree tree;
    tree.nodes_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::string line = nextLine();
        Node node;
        TPC_CHECK_MSG(std::sscanf(line.c_str(), "%d %lg %lg %d %d %lg",
                                  &node.feature, &node.threshold,
                                  &node.value, &node.left, &node.right,
                                  &node.gain) == 6,
                      "bad tree node: " + line);
        tree.nodes_.push_back(node);
    }
    return tree;
}

} // namespace tpc::ml
