#include "ml/metrics.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace tpc::ml {

double
meanAbsoluteError(const std::vector<double>& predicted,
                  const std::vector<double>& actual)
{
    TPC_CHECK(predicted.size() == actual.size());
    TPC_CHECK(!predicted.empty());
    double sum = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i)
        sum += std::abs(predicted[i] - actual[i]);
    return sum / static_cast<double>(predicted.size());
}

double
rootMeanSquaredError(const std::vector<double>& predicted,
                     const std::vector<double>& actual)
{
    TPC_CHECK(predicted.size() == actual.size());
    TPC_CHECK(!predicted.empty());
    double sum = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const double d = predicted[i] - actual[i];
        sum += d * d;
    }
    return std::sqrt(sum / static_cast<double>(predicted.size()));
}

double
ThresholdClassification::precision() const
{
    const std::size_t detections = truePositives + falsePositives;
    if (detections == 0)
        return 0.0;
    return static_cast<double>(truePositives) /
           static_cast<double>(detections);
}

double
ThresholdClassification::recall() const
{
    const std::size_t actualLong = truePositives + falseNegatives;
    if (actualLong == 0)
        return 0.0;
    return static_cast<double>(truePositives) /
           static_cast<double>(actualLong);
}

double
ThresholdClassification::f1() const
{
    const double p = precision();
    const double r = recall();
    if (p + r == 0.0)
        return 0.0;
    return 2.0 * p * r / (p + r);
}

double
ThresholdClassification::missedLongFraction() const
{
    const std::size_t n = total();
    if (n == 0)
        return 0.0;
    return static_cast<double>(falseNegatives) / static_cast<double>(n);
}

std::size_t
ThresholdClassification::total() const
{
    return truePositives + falsePositives + trueNegatives + falseNegatives;
}

std::string
ThresholdClassification::toString() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "precision=%.3f recall=%.3f f1=%.3f missedLong=%.3f%%",
                  precision(), recall(), f1(),
                  100.0 * missedLongFraction());
    return buf;
}

ThresholdClassification
classifyAtThreshold(const std::vector<double>& predicted,
                    const std::vector<double>& actual, double threshold)
{
    TPC_CHECK(predicted.size() == actual.size());
    ThresholdClassification c;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const bool predLong = predicted[i] > threshold;
        const bool isLong = actual[i] > threshold;
        if (predLong && isLong)
            ++c.truePositives;
        else if (predLong && !isLong)
            ++c.falsePositives;
        else if (!predLong && isLong)
            ++c.falseNegatives;
        else
            ++c.trueNegatives;
    }
    return c;
}

} // namespace tpc::ml
