/**
 * @file
 * Length-prefixed binary framing for the RPC serving layer.
 *
 * One frame carries one request or one response. The header is fixed-size
 * (no varints) so a reader knows after kHeaderSize bytes exactly how much
 * more to expect, and every field is little-endian regardless of host
 * order. Decoding is defensive: bad magic, unknown version/type, and
 * payload lengths beyond the negotiated cap are hard errors that the
 * server answers by closing the connection, never by trusting the length.
 *
 * Wire layout (kHeaderSize = 56 bytes, then `payloadLength` payload bytes):
 *
 *   offset  size  field
 *        0     4  magic 0x54504352 ("TPCR")
 *        4     1  version (kProtocolVersion)
 *        5     1  type (FrameType)
 *        6     1  cls (request class, application-defined)
 *        7     1  status (FrameStatus; responses only, 0 on requests)
 *        8     8  requestId (client-assigned, echoed in the response)
 *       16     4  payloadLength
 *       20     2  shardsAnswered (kResponse only; reserved-zero otherwise)
 *       22     2  shardsTotal (kResponse only; reserved-zero otherwise)
 *       24     8  traceId (distributed trace; 0 = untraced)
 *       32     8  parentSpanId (caller's span; 0 = root)
 *       40     1  traceFlags (bit 0: sampled)
 *       41     3  reserved, must be zero
 *       44     8  budgetUs (remaining end-to-end budget, µs; 0 = none)
 *       52     2  tenant (admission tenant/class id; 0 = default)
 *       54     2  retryAfterMs (server retry-throttle hint; kBusy only)
 *
 * The coverage pair reports partial-result degradation on fan-out
 * responses: shardsAnswered < shardsTotal means the merge ran without
 * every shard (one was dead, open-circuit, or past its deadline) and the
 * payload covers only the answering subset. Single-shard servers leave
 * both fields zero. On every non-kResponse frame the four bytes stay
 * reserved and must be zero, so corrupting them is still a hard decode
 * error.
 *
 * The trace context (version 2, offsets 24-43) rides on every frame so a
 * request keeps one identity across process hops: loadgen mints the
 * traceId, the aggregator forwards it to shard legs with its own span as
 * the parent, and hedged backups reuse the traceId so both legs land on
 * one timeline. Decoders still accept version-1 frames (24-byte header,
 * no trace context) and zero the trace fields, so old clients keep
 * working against new servers and vice versa.
 *
 * The overload context (version 3, offsets 44-55) carries the remaining
 * end-to-end deadline budget and the admission tenant. The budget is a
 * *relative* remaining allowance in microseconds (not an absolute wall
 * deadline) so it survives unsynchronized clocks: each hop subtracts its
 * own elapsed time before forwarding, and a hop that sees the budget hit
 * zero rejects with kDeadlineExceeded instead of occupying a worker.
 * `retryAfterMs` is a server-push retry-throttle hint, meaningful only on
 * kBusy responses (reserved-zero on every other frame): an overloaded
 * server tells clients how long to back off before re-offering work.
 * Version-1 and version-2 frames decode with all three fields zeroed
 * (no budget, default tenant, no hint).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tpc::net {

/** Bytes before the payload (version 3, with overload context). */
inline constexpr std::size_t kHeaderSize = 56;

/** Header size of the pre-trace-context wire version, still accepted. */
inline constexpr std::size_t kHeaderSizeV1 = 24;

/** Header size of the pre-overload-context wire version, still
 *  accepted (trace context but no budget/tenant fields). */
inline constexpr std::size_t kHeaderSizeV2 = 44;

/** "TPCR" little-endian. */
inline constexpr std::uint32_t kMagic = 0x52435054u;

/** Current wire version (2 added the trace context at offsets 24-43;
 *  3 added the deadline-budget/tenant context at offsets 44-55). */
inline constexpr std::uint8_t kProtocolVersion = 3;

/** Oldest wire version decoders still accept. */
inline constexpr std::uint8_t kMinProtocolVersion = 1;

/** traceFlags bit: the trace is sampled (record spans for it). */
inline constexpr std::uint8_t kTraceFlagSampled = 0x01;

/** Default cap on payload bytes; decoders reject longer frames. */
inline constexpr std::size_t kDefaultMaxPayload = 1u << 20;

/** What a frame carries. */
enum class FrameType : std::uint8_t {
    kRequest = 1,
    kResponse = 2,
    /** Admin introspection request (/statsz); empty payload. */
    kStatsRequest = 3,
    /** Response to kStatsRequest; payload is Prometheus exposition
     *  text (UTF-8, no NUL terminator). */
    kStatsResponse = 4,
    /** Admin introspection request (/tracez); empty payload. */
    kTraceRequest = 5,
    /** Response to kTraceRequest; payload is Chrome-trace JSON of the
     *  recently retained traces (UTF-8, no NUL terminator). */
    kTraceResponse = 6,
    /** Admin profiling request (/profilez); payload is a UTF-8 command
     *  ("status", "start [hz]", "stop", "folded", "speedscope",
     *  "reset"; empty means "status"). */
    kProfileRequest = 7,
    /** Response to kProfileRequest; payload is UTF-8 text — folded
     *  stacks, speedscope JSON or a status line. Command errors are
     *  reported in-band as a body starting with "error: " (transport
     *  status stays kOk). */
    kProfileResponse = 8,
};

/** Response disposition. */
enum class FrameStatus : std::uint8_t {
    kOk = 0,
    /** Load-shed by the admission controller; retry later. */
    kBusy = 1,
    /** The server failed to execute the request. */
    kError = 2,
    /** Admitted but cancelled before dispatch: its server-side deadline
     *  expired while it sat in the queue. Distinct from kBusy so clients
     *  and benchmarks can separate sheds from deadline cancellations. */
    kCancelled = 3,
    /** The request's end-to-end budget expired — rejected on arrival or
     *  while queued, without ever occupying a worker. Distinct from
     *  kCancelled (a per-hop server deadline, no client budget) so
     *  clients can tell "my budget ran out" from "the server gave up". */
    kDeadlineExceeded = 4,
};

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::kRequest;
    /** Application-defined request class (e.g. short/long). */
    std::uint8_t cls = 0;
    FrameStatus status = FrameStatus::kOk;
    /** Client-assigned id, echoed verbatim in the response. */
    std::uint64_t requestId = 0;
    /** Fan-out coverage (kResponse only): shards merged into the payload
     *  out of the shards the query spans. 0/0 means "not a fan-out". */
    std::uint16_t shardsAnswered = 0;
    std::uint16_t shardsTotal = 0;
    /** Distributed-trace id; 0 when the request is untraced (or the
     *  frame arrived as wire version 1, which had no trace context). */
    std::uint64_t traceId = 0;
    /** Span id of the sender's enclosing span; 0 for a trace root. */
    std::uint64_t parentSpanId = 0;
    /** kTraceFlagSampled et al.; forwarded verbatim across hops. */
    std::uint8_t traceFlags = 0;
    /** Remaining end-to-end budget in microseconds at send time; 0 means
     *  "no budget" (the request never expires client-side). Each hop
     *  subtracts its own elapsed time before forwarding. Zeroed on
     *  version-1/2 frames. */
    std::uint64_t budgetUs = 0;
    /** Admission tenant/class id (weighted-fair admission); 0 is the
     *  default tenant. Zeroed on version-1/2 frames. */
    std::uint16_t tenant = 0;
    /** Retry-throttle hint (kBusy responses only): the server asks the
     *  client to wait at least this many ms before retrying. 0 = no
     *  hint. Reserved-zero on every other frame. */
    std::uint16_t retryAfterMs = 0;
    std::vector<std::uint8_t> payload;

    /** True when a fan-out response was merged without full coverage. */
    bool degraded() const
    {
        return shardsTotal != 0 && shardsAnswered < shardsTotal;
    }
};

/** Appends the wire encoding of @p frame to @p out. */
void encodeFrame(const Frame& frame, std::vector<std::uint8_t>& out);

/** Encoded size of a frame with @p payloadBytes of payload. */
inline std::size_t
frameSize(std::size_t payloadBytes)
{
    return kHeaderSize + payloadBytes;
}

/** Outcome of one decode attempt. */
enum class DecodeStatus : std::uint8_t {
    /** Not enough bytes yet; consumed == 0. */
    kNeedMore,
    /** One frame decoded; consumed == its encoded size. */
    kFrame,
    /** Malformed input; the connection must be dropped. */
    kError,
};

/** Result of decodeFrame(). */
struct DecodeResult
{
    DecodeStatus status = DecodeStatus::kNeedMore;
    /** Bytes consumed from the input (0 unless status == kFrame). */
    std::size_t consumed = 0;
    Frame frame;
    /** Human-readable reason when status == kError. */
    std::string error;
};

/**
 * Attempts to decode one frame from the first @p size bytes of @p data.
 * Never reads past @p size; a header announcing more payload than
 * @p maxPayload is an error, not a wait-for-more.
 */
DecodeResult decodeFrame(const std::uint8_t* data, std::size_t size,
                         std::size_t maxPayload = kDefaultMaxPayload);

/**
 * Incremental frame reader for a byte stream: append() whatever the
 * socket produced, then call next() until it returns false. Once any
 * input was malformed the reader latches into the error state and
 * next() always returns false.
 */
class FrameReader
{
  public:
    explicit FrameReader(std::size_t maxPayload = kDefaultMaxPayload)
        : maxPayload_(maxPayload)
    {
    }

    /** Feeds @p size raw stream bytes into the reader. */
    void append(const std::uint8_t* data, std::size_t size);

    /**
     * Pops the next complete frame into @p out. Returns false when the
     * buffered bytes hold no complete frame (or the stream is broken).
     */
    bool next(Frame* out);

    /** True once malformed input was seen. */
    bool broken() const { return broken_; }

    /** Reason the stream is broken (empty while healthy). */
    const std::string& error() const { return error_; }

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t buffered() const { return buffer_.size() - offset_; }

  private:
    std::size_t maxPayload_;
    std::vector<std::uint8_t> buffer_;
    /** Consumed prefix of buffer_; compacted lazily. */
    std::size_t offset_ = 0;
    bool broken_ = false;
    std::string error_;
};

/** Appends a little-endian u64 to a payload buffer. */
void appendU64(std::vector<std::uint8_t>& out, std::uint64_t value);

/**
 * Reads a little-endian u64 from @p payload at @p offset; returns false
 * when the payload is too short.
 */
bool readU64(const std::vector<std::uint8_t>& payload, std::size_t offset,
             std::uint64_t* value);

} // namespace tpc::net
