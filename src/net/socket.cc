#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.h"

namespace tpc::net {
namespace {

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

FdGuard&
FdGuard::operator=(FdGuard&& other) noexcept
{
    if (this != &other)
        reset(other.release());
    return *this;
}

void
FdGuard::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

int
listenTcp(std::uint16_t port, std::uint16_t* boundPort,
          const std::string& bindAddress, int backlog)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        util::fatal(std::string("socket(): ") + std::strerror(errno));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bindAddress.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        util::fatal("invalid bind address: " + bindAddress);
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        util::fatal("bind(" + bindAddress + ":" + std::to_string(port) +
                    "): " + why);
    }
    if (::listen(fd, backlog) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        util::fatal("listen(): " + why);
    }
    if (!setNonBlocking(fd)) {
        ::close(fd);
        util::fatal("fcntl(O_NONBLOCK) on listen socket failed");
    }
    if (boundPort != nullptr) {
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        TPC_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                                &len) == 0);
        *boundPort = ntohs(bound.sin_port);
    }
    return fd;
}

int
acceptTcp(int listenFd)
{
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0)
        return -1;
    if (!setNonBlocking(fd)) {
        ::close(fd);
        return -1;
    }
    setNoDelay(fd);
    return fd;
}

int
connectTcp(const std::string& host, std::uint16_t port, std::string* error)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr)
            *error = std::string("socket(): ") + std::strerror(errno);
        return -1;
    }
    if (!setNonBlocking(fd)) {
        ::close(fd);
        if (error != nullptr)
            *error = "fcntl(O_NONBLOCK) failed";
        return -1;
    }
    setNoDelay(fd);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        if (error != nullptr)
            *error = "invalid host address: " + host;
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 &&
        errno != EINPROGRESS) {
        if (error != nullptr)
            *error = std::string("connect(): ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
connectSucceeded(int fd)
{
    int soError = 0;
    socklen_t len = sizeof(soError);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) != 0)
        return false;
    return soError == 0;
}

IoStatus
readSome(int fd, std::uint8_t* buffer, std::size_t capacity, std::size_t* n)
{
    *n = 0;
    const ssize_t got = ::read(fd, buffer, capacity);
    if (got > 0) {
        *n = static_cast<std::size_t>(got);
        return IoStatus::kOk;
    }
    if (got == 0)
        return IoStatus::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        return IoStatus::kWouldBlock;
    return IoStatus::kError;
}

IoStatus
writeSome(int fd, const std::uint8_t* buffer, std::size_t size,
          std::size_t* n)
{
    *n = 0;
    const ssize_t wrote = ::send(fd, buffer, size, MSG_NOSIGNAL);
    if (wrote >= 0) {
        *n = static_cast<std::size_t>(wrote);
        return IoStatus::kOk;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        return IoStatus::kWouldBlock;
    return IoStatus::kError;
}

} // namespace tpc::net
