/**
 * @file
 * Minimal readiness-notification abstraction for the RPC event loops.
 *
 * On Linux this is a thin epoll(7) wrapper (level-triggered, one
 * registration per fd); elsewhere it degrades to poll(2) over the
 * registered set. The interface is the intersection the RpcServer needs:
 * register/modify/unregister an fd with read/write interest, then wait
 * for a batch of events with a timeout.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace tpc::net {

/** Interest / readiness bits. */
enum PollEvents : std::uint32_t {
    kPollIn = 1u << 0,
    kPollOut = 1u << 1,
    /** Error or hangup; always reported, never requested. */
    kPollErr = 1u << 2,
};

/** One ready descriptor from Poller::wait(). */
struct PollEvent
{
    int fd = -1;
    std::uint32_t events = 0;
};

/** Level-triggered readiness multiplexer (epoll on Linux, else poll). */
class Poller
{
  public:
    Poller();
    ~Poller();

    Poller(const Poller&) = delete;
    Poller& operator=(const Poller&) = delete;

    /** Registers @p fd with the given interest bits. */
    void add(int fd, std::uint32_t events);

    /** Changes the interest bits of a registered fd. */
    void modify(int fd, std::uint32_t events);

    /** Unregisters @p fd (must be called before closing it). */
    void remove(int fd);

    /**
     * Blocks up to @p timeoutMs (-1 = forever, 0 = poll) and fills
     * @p out with ready descriptors. Returns the number of events.
     */
    int wait(std::vector<PollEvent>& out, int timeoutMs);

  private:
#if defined(__linux__)
    int epollFd_ = -1;
#else
    struct Registration
    {
        int fd;
        std::uint32_t events;
    };
    std::vector<Registration> registrations_;
#endif
};

} // namespace tpc::net
