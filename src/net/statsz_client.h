/**
 * @file
 * Clients for the /statsz and /tracez introspection endpoints.
 *
 * fetchStatsz() opens one connection, sends a kStatsRequest frame, and
 * waits — under a hard wall-clock deadline — for the kStatsResponse
 * carrying the Prometheus exposition text. The deadline covers connect,
 * send, and receive together, so a stalled event loop (the failure mode
 * the CI smoke test guards against) surfaces as a timeout, never a hang.
 * fetchTracez() is the same pull for the kTraceRequest/kTraceResponse
 * pair, returning the server's retained traces as Chrome-trace JSON.
 */
#pragma once

#include <cstdint>
#include <string>

namespace tpc::net {

/** Outcome of one /statsz pull. */
struct StatszResult
{
    /** True when a well-formed kStatsResponse with status OK arrived
     *  within the deadline. */
    bool ok = false;
    /** Exposition text (empty unless ok). */
    std::string text;
    /** Failure description (empty when ok). */
    std::string error;
    /** Wall time the whole pull took (ms). */
    double elapsedMs = 0.0;
};

/**
 * Pulls /statsz from host:port. @p timeoutMs bounds the entire
 * operation; on expiry the result carries ok=false and a "deadline"
 * error. Never fatal — callers (CLI, smoke test) decide how to fail.
 */
StatszResult fetchStatsz(const std::string& host, std::uint16_t port,
                         double timeoutMs = 1000.0);

/**
 * Pulls /tracez from host:port: the text is the server's retained
 * traces as Chrome-trace JSON (span_collector.h). Same deadline
 * semantics as fetchStatsz(); a server without a tracez provider
 * answers kError, reported here as ok=false.
 */
StatszResult fetchTracez(const std::string& host, std::uint16_t port,
                         double timeoutMs = 1000.0);

/**
 * Sends a /profilez command ("status", "start [hz]", "stop", "folded",
 * "speedscope", "reset") as a kProfileRequest payload and returns the
 * kProfileResponse body. Command failures travel in-band: the transport
 * answers kOk with a body starting "error: ", so ok=true here means the
 * pull worked, not that the command did — callers check the body.
 */
StatszResult fetchProfilez(const std::string& host, std::uint16_t port,
                           const std::string& command,
                           double timeoutMs = 5000.0);

} // namespace tpc::net
