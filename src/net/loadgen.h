/**
 * @file
 * Open-loop load-generator client for the RPC serving layer.
 *
 * The paper's Section 4.1 client discipline: arrivals follow a Poisson
 * process at a configured rate, and the arrival process NEVER blocks on
 * slow responses — a request whose connection is backed up is buffered
 * and timestamped at its scheduled arrival, so server-side queueing shows
 * up as client-observed latency instead of silently throttling offered
 * load (the closed-loop fallacy that hides overload). One thread drives
 * N persistent connections through non-blocking sockets; responses are
 * matched to requests by the echoed frame id.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/span_collector.h"
#include "overload/admission.h"
#include "overload/retry.h"
#include "stats/latency_recorder.h"

namespace tpc::net {

/** Settings of one load-generation run. */
struct LoadGenConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Offered load (requests per second); the start rate when ramping. */
    double qps = 100.0;
    /**
     * When > 0, the arrival rate ramps linearly from qps to this value
     * over durationMs (which must be set), then holds — non-stationary
     * offered load for the drift benches (--rate-ramp start:end). The
     * ramp is an exact inhomogeneous Poisson process (thinning), still
     * fully determined by the seed. 0 keeps the rate constant.
     */
    double qpsEnd = 0.0;
    /** Stop after this many requests (0: use durationMs instead). */
    std::uint64_t numRequests = 0;
    /** Stop sending after this much wall time (ms); used when
     *  numRequests == 0. */
    double durationMs = 2000.0;
    /** Persistent connections to spread requests over (round-robin). */
    int connections = 4;
    /** Seed of the Poisson arrival process. */
    std::uint64_t seed = 1;
    /** Request payload size; the first 8 bytes always carry the sequence
     *  number little-endian (applications key work off it). */
    std::size_t payloadBytes = 8;
    /** Request class byte copied into every frame. */
    std::uint8_t cls = 0;
    /** How long to retry the initial connects (the server may still be
     *  starting, e.g. in CI). */
    double connectTimeoutMs = 10000.0;
    /** Back-off between reconnect attempts after a connection dies
     *  mid-run (the schedule keeps running meanwhile). */
    double reconnectDelayMs = 100.0;
    /** How long to wait for outstanding responses after the last send. */
    double drainTimeoutMs = 10000.0;
    /** Optional payload customization, called after the sequence number
     *  is written; may append or rewrite bytes beyond the first 8. */
    std::function<void(std::uint64_t seq, std::vector<std::uint8_t>&)>
        payloadFn;
    /** Optional early-stop flag (set from a signal handler): once true,
     *  sending stops and the run proceeds to the normal drain, so the
     *  partial results (and their CSV) survive a Ctrl-C. */
    std::atomic<bool>* stopFlag = nullptr;
    /**
     * Emit a trace context on every request: the traceId is derived
     * deterministically from (seed, seq) so a run's ids are reproducible
     * and joinable against server-side /tracez output.
     */
    bool trace = true;
    /**
     * Client-side latency target (ms); 0 disables. Responses over the
     * target are reported in LoadGenResult::overTarget (with their
     * traceId) and drive tail-based retention of client spans.
     */
    double targetMs = 0.0;
    /** Optional client-span collector (borrowed; role "loadgen"). When
     *  set, every completed response records a kClient root span and
     *  finishes the trace against targetMs. */
    obs::SpanCollector* spans = nullptr;
    /**
     * Warm-up window (ms of scheduled-arrival time); responses to
     * requests that arrived inside it still count as completions but are
     * excluded from the latency percentiles and over-target reporting,
     * so cold caches, first-touch page faults and JIT'd connection state
     * don't pollute steady-state tail numbers. 0 keeps every response.
     */
    double warmupMs = 0.0;
    /**
     * End-to-end deadline budget per request (ms); 0 disables. Every
     * (re)send stamps the *remaining* budget on the frame (header v3),
     * and a request still unanswered when its budget runs out counts as
     * a timeout (the eventual late response is discarded).
     */
    double budgetMs = 0.0;
    /** Client-side response timeout (ms); 0 falls back to budgetMs
     *  (and with both 0, requests never time out client-side). */
    double timeoutMs = 0.0;
    /** Retry shed/timed-out requests (see retry fields below). */
    bool retryEnabled = false;
    /** Total attempts per request including the first send. */
    int maxAttempts = 3;
    /** Capped-exponential-backoff shape for disciplined retries. */
    overload::BackoffConfig backoff;
    /** Token-bucket retry budget (retries <= ~earnPerSuccess x
     *  successes); ignored in naive mode. */
    overload::RetryBudgetConfig retryBudget;
    /**
     * Storm mode: retry on BUSY *and* timeout with a short fixed delay,
     * ignoring the retry budget, the server's retryAfterMs hints and the
     * remaining deadline budget — the undisciplined fleet behavior the
     * overload bench uses as its collapse baseline.
     */
    bool naiveRetries = false;
    /**
     * Traffic mix by tenant: each request is assigned a tenant id drawn
     * with probability weight/sum(weights) (deterministic from the
     * seed), stamped on the frame, and accounted separately in
     * LoadGenResult::perTenant. Empty = everything on tenant 0.
     */
    std::vector<overload::TenantQuota> tenants;
};

/** One response that exceeded LoadGenConfig::targetMs. */
struct OverTargetRequest
{
    std::uint64_t seq = 0;
    std::uint64_t traceId = 0;
    double responseMs = 0.0;
};

/** Per-tenant slice of a run (one CSV row each). */
struct TenantLoadGenResult
{
    std::uint16_t tenant = 0;
    std::string name;
    double weight = 0.0;
    stats::LatencyRecorder latency;
    std::uint64_t sent = 0;
    std::uint64_t completed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t shed = 0;
    std::uint64_t errors = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deadlineExceeded = 0;
    std::uint64_t failed = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t unanswered = 0;

    stats::LatencySummary summary() const { return latency.summary(); }
};

/** Outcome of one load-generation run. */
struct LoadGenResult
{
    /** Response time of each OK response (ms), measured from the
     *  *scheduled* arrival — open-loop convention. */
    stats::LatencyRecorder latency;
    /** Requests handed to the arrival process. */
    std::uint64_t sent = 0;
    /** OK responses received. */
    std::uint64_t completed = 0;
    /** OK responses whose coverage fields show a partial (degraded)
     *  shard merge — a subset of `completed`. */
    std::uint64_t degraded = 0;
    /** BUSY responses (shed by admission control). */
    std::uint64_t shed = 0;
    /** Error-status responses. */
    std::uint64_t errors = 0;
    /** kCancelled responses (server-side deadline cancellations). */
    std::uint64_t cancelled = 0;
    /** kDeadlineExceeded responses (the end-to-end budget ran out at
     *  some hop before a worker ever picked the request up). */
    std::uint64_t deadlineExceeded = 0;
    /** Requests that hit the client-side timeout/budget with no
     *  response (their late responses, if any, are discarded). */
    std::uint64_t timeouts = 0;
    /** Re-sends issued by the retry machinery (not counted in sent). */
    std::uint64_t retries = 0;
    /** Retries the token-bucket budget refused to fund. */
    std::uint64_t retriesSuppressed = 0;
    /**
     * Requests that failed because their connection died mid-stream
     * (outstanding on a dropped connection, or scheduled while every
     * connection was down). The open-loop schedule keeps running; these
     * are counted, not silently converted into reduced offered load.
     */
    std::uint64_t failed = 0;
    /** Requests never answered (lost connection or drain timeout). */
    std::uint64_t unanswered = 0;
    /** OK responses excluded from `latency` because their request
     *  arrived inside LoadGenConfig::warmupMs. */
    std::uint64_t warmupExcluded = 0;
    /** Connections that dropped mid-run. */
    std::uint64_t connectionsLost = 0;
    /** Successful mid-run reconnects after a drop. */
    std::uint64_t reconnects = 0;
    /** Wall time from first scheduled arrival to loop exit (ms). */
    double elapsedMs = 0.0;
    /** sent / elapsed — sanity check against the configured QPS. */
    double achievedQps = 0.0;
    /** Completed responses over LoadGenConfig::targetMs, with their
     *  trace ids (empty when no target was set). */
    std::vector<OverTargetRequest> overTarget;
    /** Per-tenant breakdown, in LoadGenConfig::tenants order (empty
     *  when no tenants were configured). */
    std::vector<TenantLoadGenResult> perTenant;

    /** The slowest over-target request (all-zero when none). */
    OverTargetRequest worstOverTarget() const
    {
        OverTargetRequest worst;
        for (const OverTargetRequest& req : overTarget)
            if (req.responseMs > worst.responseMs)
                worst = req;
        return worst;
    }

    /** Percentile bundle over the OK responses. */
    stats::LatencySummary summary() const { return latency.summary(); }
};

/**
 * Runs the open-loop client to completion. Fatal when no connection can
 * be established within connectTimeoutMs.
 */
LoadGenResult runLoadGen(const LoadGenConfig& config);

/** The exact writeLoadGenCsv column schema, in order (tested). */
std::vector<std::string> loadGenCsvHeader();

/** Writes the summary CSV: an "all" totals row (tenant column "all"),
 *  then one row per configured tenant. Columns are loadGenCsvHeader()
 *  (sent/completed/shed/retries/timeouts/... + the LatencySummary
 *  columns + the worst over-target trace_id + tenant identity). */
void writeLoadGenCsv(const LoadGenResult& result, const LoadGenConfig& config,
                     const std::string& path);

/** Writes one row per over-target response (seq, trace_id as 16-digit
 *  hex, response_ms) so client-side latency rows join against /tracez
 *  output by trace id. */
void writeLoadGenTraceCsv(const LoadGenResult& result,
                          const std::string& path);

} // namespace tpc::net
