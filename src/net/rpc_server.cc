#include "net/rpc_server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fcntl.h>
#include <thread>
#include <unistd.h>

#include "obs/prof/cpu_profiler.h"
#include "overload/budget.h"
#include "util/logging.h"

namespace tpc::net {

using Clock = std::chrono::steady_clock;

RpcServer::RpcServer(const RpcServerConfig& config,
                     server::ThreadedServer& server, RequestHandler handler)
    : config_(config), server_(server), handler_(std::move(handler)),
      admission_(config.admission)
{
    TPC_CHECK(handler_ != nullptr);
    listenFd_.reset(listenTcp(config_.port, &port_, config_.bindAddress,
                              config_.backlog));
    TPC_CHECK(::pipe(wakePipe_) == 0);
    for (const int fd : wakePipe_) {
        const int flags = ::fcntl(fd, F_GETFL, 0);
        TPC_CHECK(flags >= 0 &&
                  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
    }
    poller_.add(listenFd_.fd(), kPollIn);
    poller_.add(wakePipe_[0], kPollIn);
}

RpcServer::~RpcServer()
{
    // Every admitted job's postamble calls back into this object; wait for
    // them all before the member state goes away.
    server_.drain();
    if (wakePipe_[0] >= 0)
        ::close(wakePipe_[0]);
    if (wakePipe_[1] >= 0)
        ::close(wakePipe_[1]);
}

double
RpcServer::nowMs() const
{
    return std::chrono::duration<double, std::milli>(Clock::now() - epoch_)
        .count();
}

void
RpcServer::attachTrace(obs::TraceRecorder* trace, int serverId)
{
    trace_ = trace;
    traceServerId_ = serverId;
}

void
RpcServer::setStatszProvider(StatszProvider provider)
{
    statszProvider_ = std::move(provider);
}

void
RpcServer::setTracezProvider(TracezProvider provider)
{
    tracezProvider_ = std::move(provider);
}

void
RpcServer::setProfilezProvider(ProfilezProvider provider)
{
    profilezProvider_ = std::move(provider);
}

void
RpcServer::attachStageStats(obs::StageStatsCollector* stageStats)
{
    stageStats_ = stageStats;
}

void
RpcServer::attachFaults(faults::FaultInjector* faults)
{
    faults_ = faults;
}

void
RpcServer::attachMetrics(obs::MetricsRegistry* metrics)
{
    metrics_ = metrics;
    if (metrics == nullptr) {
        metric_ = MetricHandles{};
        return;
    }
    metric_.accepted = &metrics->counter("net_accepted");
    metric_.shed = &metrics->counter("net_shed");
    metric_.connections = &metrics->counter("net_connections");
    metric_.protocolErrors = &metrics->counter("net_protocol_errors");
    metric_.cancelled = &metrics->counter("net_cancelled");
    metric_.disconnectsRetired = &metrics->counter("net_disconnects_retired");
    metric_.faultsInjected = &metrics->counter("net_faults_injected");
    metric_.inFlight = &metrics->gauge("net_in_flight");
    metric_.wakeups = &metrics->counter("net_loop_wakeups");
    metric_.wakeDrains = &metrics->counter("net_loop_wake_drains");
    // Sub-microsecond floor: loop iterations and wake dispatches live
    // far below the 10 µs default latency bucketing.
    metric_.loopIterMs =
        &metrics->histogram("net_loop_iter_ms", 0.0001, 100000.0, 1.05);
    metric_.wakeDispatchMs =
        &metrics->histogram("net_wake_dispatch_ms", 0.0001, 100000.0, 1.05);
}

RpcServerStats
RpcServer::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

LoopHealthSnapshot
RpcServer::loopHealth() const
{
    LoopHealthSnapshot snap;
    snap.wakeups = wakeups_.load(std::memory_order_relaxed);
    snap.wakeDrains = wakeDrains_.load(std::memory_order_relaxed);
    snap.loopIterations = loopIterations_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(statsMutex_);
    snap.iterWorkMs = loopIterWorkMs_;
    snap.wakeDispatchMs = wakeDispatchMs_;
    return snap;
}

void
RpcServer::recordNetEvent(obs::TraceEventType type, std::uint64_t requestId)
{
    if (trace_ == nullptr)
        return;
    obs::TraceEvent ev;
    ev.type = type;
    ev.serverId = traceServerId_;
    ev.requestId = requestId;
    ev.timeMs = nowMs();
    trace_->record(ev);
}

void
RpcServer::requestStop()
{
    stopRequested_.store(true, std::memory_order_release);
    wake();
}

void
RpcServer::wake()
{
    // Counter first, then the pipe write: everything here must stay
    // async-signal-safe (requestStop may run in a signal handler), and
    // relaxed fetch_add is.
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (metric_.wakeups != nullptr)
        metric_.wakeups->inc();
    const std::uint8_t byte = 1;
    // Async-signal-safe; EAGAIN just means the loop is already pending.
    [[maybe_unused]] const ssize_t n = ::write(wakePipe_[1], &byte, 1);
}

void
RpcServer::drainWakePipe()
{
    wakeDrains_.fetch_add(1, std::memory_order_relaxed);
    if (metric_.wakeDrains != nullptr)
        metric_.wakeDrains->inc();
    std::uint8_t buffer[256];
    while (::read(wakePipe_[0], buffer, sizeof(buffer)) > 0) {
    }
}

void
RpcServer::acceptReady()
{
    for (;;) {
        const int fd = acceptTcp(listenFd_.fd());
        if (fd < 0)
            return;
        auto conn = std::make_unique<Connection>();
        conn->fd.reset(fd);
        conn->connId = nextConnId_++;
        conn->reader = FrameReader(config_.maxPayloadBytes);
        poller_.add(fd, kPollIn);
        recordNetEvent(obs::TraceEventType::kNetAccept, conn->connId);
        if (metric_.connections != nullptr)
            metric_.connections->inc();
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.connectionsAccepted;
        }
        connectionsById_[conn->connId] = conn.get();
        connectionsByFd_[fd] = std::move(conn);
    }
}

void
RpcServer::closeConnection(std::uint64_t connId)
{
    const auto byId = connectionsById_.find(connId);
    if (byId == connectionsById_.end())
        return;
    Connection* conn = byId->second;
    poller_.remove(conn->fd.fd());
    connectionsById_.erase(byId);
    connectionsByFd_.erase(conn->fd.fd()); // Frees conn, closes the fd.

    // Retire the dead connection's queued work: a cancelled job releases
    // its admission slot right away (through the cancellation completion)
    // instead of occupying a worker to compute a response nobody will
    // read. Jobs already dispatched finish normally; their responses are
    // discarded when the completion finds no connection.
    std::uint64_t retired = 0;
    for (const auto& [pendingId, pending] : pendings_) {
        if (pending->connId != connId)
            continue;
        if (server_.tryCancel(pending->jobId))
            ++retired;
    }
    if (retired > 0) {
        if (metric_.disconnectsRetired != nullptr)
            metric_.disconnectsRetired->inc(retired);
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.disconnectsRetired += retired;
    }
}

void
RpcServer::onReadable(Connection& conn)
{
    std::uint8_t buffer[16384];
    for (;;) {
        std::size_t n = 0;
        const IoStatus status =
            readSome(conn.fd.fd(), buffer, sizeof(buffer), &n);
        if (status == IoStatus::kOk) {
            conn.reader.append(buffer, n);
            continue;
        }
        if (status == IoStatus::kWouldBlock)
            break;
        // Peer closed or hard error: drop the connection. In-flight
        // requests keep running; their responses are discarded.
        closeConnection(conn.connId);
        return;
    }

    Frame frame;
    const std::uint64_t connId = conn.connId;
    while (conn.reader.next(&frame)) {
        handleFrame(conn, std::move(frame));
        // handleFrame may have closed the connection on a protocol error.
        if (connectionsById_.find(connId) == connectionsById_.end())
            return;
    }
    if (conn.reader.broken()) {
        util::warn("rpc: dropping connection " + std::to_string(connId) +
                   ": " + conn.reader.error());
        if (metric_.protocolErrors != nullptr)
            metric_.protocolErrors->inc();
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.protocolErrors;
        }
        closeConnection(connId);
    }
}

void
RpcServer::handleFrame(Connection& conn, Frame frame)
{
    // Introspection frames are answered inline, before admission and
    // outside the request counters and NET_RECEIVE tracing: /statsz
    // observes the server, it never perturbs the serving pipeline.
    if (frame.type == FrameType::kStatsRequest) {
        Frame response;
        response.type = FrameType::kStatsResponse;
        response.requestId = frame.requestId;
        if (statszProvider_) {
            const std::string text = statszProvider_();
            response.status = FrameStatus::kOk;
            response.payload.assign(text.begin(), text.end());
        } else {
            response.status = FrameStatus::kError;
        }
        sendFrame(conn, response);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.statszServed;
        }
        return;
    }
    // /tracez rides the same inline admin path: the retained span trees
    // are bounded, so rendering them never blocks the loop for long.
    if (frame.type == FrameType::kTraceRequest) {
        Frame response;
        response.type = FrameType::kTraceResponse;
        response.requestId = frame.requestId;
        if (tracezProvider_) {
            const std::string json = tracezProvider_();
            response.status = FrameStatus::kOk;
            response.payload.assign(json.begin(), json.end());
        } else {
            response.status = FrameStatus::kError;
        }
        sendFrame(conn, response);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.tracezServed;
        }
        return;
    }
    // /profilez: same inline admin path. The payload is the command;
    // command errors come back in-band ("error: ..." body, kOk status)
    // so the CLI can distinguish "bad command" from "no provider".
    if (frame.type == FrameType::kProfileRequest) {
        Frame response;
        response.type = FrameType::kProfileResponse;
        response.requestId = frame.requestId;
        if (profilezProvider_) {
            const std::string text = profilezProvider_(
                std::string(frame.payload.begin(), frame.payload.end()));
            response.status = FrameStatus::kOk;
            response.payload.assign(text.begin(), text.end());
        } else {
            response.status = FrameStatus::kError;
        }
        sendFrame(conn, response);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.profilezServed;
        }
        return;
    }

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.requestsReceived;
    }
    recordNetEvent(obs::TraceEventType::kNetReceive, frame.requestId);
    if (frame.type != FrameType::kRequest) {
        if (metric_.protocolErrors != nullptr)
            metric_.protocolErrors->inc();
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.protocolErrors;
        }
        closeConnection(conn.connId);
        return;
    }

    // End-to-end budget enforcement at the earliest possible point: a
    // request whose remaining budget is already unservable is rejected
    // before admission, so it never takes a slot or occupies a worker.
    // The client learns "your budget ran out" (kDeadlineExceeded), not
    // "the server is busy" — retrying would only waste more budget.
    if (overload::budgetExpired(frame.budgetUs)) {
        if (stageStats_ != nullptr)
            stageStats_->recordCancelled(frame.cls);
        Frame response;
        response.type = FrameType::kResponse;
        response.status = FrameStatus::kDeadlineExceeded;
        response.cls = frame.cls;
        response.requestId = frame.requestId;
        sendFrame(conn, response);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.deadlineExceeded;
        }
        return;
    }

    auto busy = [&] {
        recordNetEvent(obs::TraceEventType::kNetShed, frame.requestId);
        if (stageStats_ != nullptr)
            stageStats_->recordShed(frame.cls);
        Frame response;
        response.type = FrameType::kResponse;
        response.status = FrameStatus::kBusy;
        response.cls = frame.cls;
        response.requestId = frame.requestId;
        // Retry-throttle push: the deeper the dispatch queue, the longer
        // the server asks shed clients to back off before re-offering.
        if (config_.busyRetryHintMs > 0.0) {
            const double hint =
                config_.busyRetryHintMs *
                (1.0 + static_cast<double>(
                           std::max(0, server_.queueDepth())));
            response.retryAfterMs = static_cast<std::uint16_t>(std::min(
                {hint, config_.maxBusyRetryHintMs, 65535.0}));
        }
        sendFrame(conn, response);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.busySent;
        }
    };

    if (!admission_.tryAdmit(frame.tenant, server_.queueDepth())) {
        if (metric_.shed != nullptr)
            metric_.shed->inc();
        busy();
        return;
    }
    if (metric_.accepted != nullptr)
        metric_.accepted->inc();
    if (metric_.inFlight != nullptr)
        metric_.inFlight->set(admission_.inFlight());

    auto pending = std::make_unique<PendingRequest>();
    pending->pendingId = nextPendingId_++;
    pending->connId = conn.connId;
    pending->clientRequestId = frame.requestId;
    pending->cls = frame.cls;
    pending->tenant = frame.tenant;
    pending->budgeted = frame.budgetUs != overload::kNoBudgetUs;

    server::ThreadedJob job = handler_(frame, pending->responsePayload);
    // The frame header is the authoritative trace context: stamp it on
    // the job so the execution engine's spans join the sender's trace
    // (zero for v1 frames and untraced clients — no spans recorded).
    job.traceId = frame.traceId;
    job.parentSpanId = frame.parentSpanId;
    // The completion hook rides on the postamble: ThreadedServer runs it
    // on the primary participant after every task finished, so the
    // response payload is fully written before the event loop reads it.
    const std::uint64_t pendingId = pending->pendingId;
    auto inner = std::move(job.postamble);
    job.postamble = [this, pendingId, inner = std::move(inner)] {
        if (inner)
            inner();
        onJobComplete(pendingId);
    };
    // The effective queue deadline is the tighter of the per-hop server
    // deadline and the request's remaining end-to-end budget: a budgeted
    // request still queued when its budget runs out is cancelled before
    // dispatch (kDeadlineExceeded), never occupying a worker.
    job.queueDeadlineMs = config_.requestDeadlineMs;
    if (pending->budgeted) {
        const double budgetMs = overload::usToMs(frame.budgetUs);
        if (job.queueDeadlineMs <= 0.0 || budgetMs < job.queueDeadlineMs)
            job.queueDeadlineMs = budgetMs;
    }
    job.onCancel = [this, pendingId] { onJobCancelled(pendingId); };

    pendings_[pendingId] = std::move(pending);
    std::uint64_t jobId = 0;
    if (!server_.trySubmit(std::move(job), &jobId)) {
        // Lost the race against shutdown: undo the admission and answer
        // BUSY so the client can retry elsewhere.
        pendings_.erase(pendingId);
        admission_.onComplete(frame.tenant);
        if (metric_.inFlight != nullptr)
            metric_.inFlight->set(admission_.inFlight());
        busy();
        return;
    }
    pendings_[pendingId]->jobId = jobId;
}

void
RpcServer::onJobComplete(std::uint64_t pendingId)
{
    {
        std::lock_guard<std::mutex> lock(completionMutex_);
        completions_.push_back(
            Completion{pendingId, /*cancelled=*/false, nowMs()});
    }
    wake();
}

void
RpcServer::onJobCancelled(std::uint64_t pendingId)
{
    {
        std::lock_guard<std::mutex> lock(completionMutex_);
        completions_.push_back(
            Completion{pendingId, /*cancelled=*/true, nowMs()});
    }
    wake();
}

void
RpcServer::processCompletions()
{
    std::vector<Completion> done;
    {
        std::lock_guard<std::mutex> lock(completionMutex_);
        done.swap(completions_);
    }
    if (!done.empty()) {
        // One timestamp for the batch: the whole point is measuring how
        // long completions sat queued, not timing each map lookup.
        const double now = nowMs();
        std::lock_guard<std::mutex> lock(statsMutex_);
        for (const Completion& completion : done) {
            const double waitedMs =
                std::max(0.0, now - completion.postedAtMs);
            wakeDispatchMs_.add(waitedMs);
            if (metric_.wakeDispatchMs != nullptr)
                metric_.wakeDispatchMs->add(waitedMs);
        }
    }
    for (const Completion& completion : done) {
        const auto it = pendings_.find(completion.pendingId);
        TPC_CHECK(it != pendings_.end());
        PendingRequest& pending = *it->second;
        // Slot release is unconditional — completed, cancelled, or
        // deadline-expired, the tenant's admission slot never leaks.
        admission_.onComplete(pending.tenant);
        if (metric_.inFlight != nullptr)
            metric_.inFlight->set(admission_.inFlight());
        // A budgeted request cancelled in the queue ran out of its
        // end-to-end budget: report kDeadlineExceeded, distinct from the
        // per-hop kCancelled a server-local deadline produces.
        const bool deadlineExceeded =
            completion.cancelled && pending.budgeted;
        if (completion.cancelled) {
            if (metric_.cancelled != nullptr)
                metric_.cancelled->inc();
            std::lock_guard<std::mutex> lock(statsMutex_);
            if (deadlineExceeded)
                ++stats_.deadlineExceeded;
            else
                ++stats_.requestsCancelled;
        }

        const auto connIt = connectionsById_.find(pending.connId);
        if (connIt != connectionsById_.end()) {
            Frame response;
            response.type = FrameType::kResponse;
            response.status = deadlineExceeded
                                  ? FrameStatus::kDeadlineExceeded
                              : completion.cancelled
                                  ? FrameStatus::kCancelled
                                  : FrameStatus::kOk;
            response.cls = pending.cls;
            response.requestId = pending.clientRequestId;
            if (!completion.cancelled)
                response.payload = std::move(pending.responsePayload);
            recordNetEvent(obs::TraceEventType::kNetRespond,
                           pending.clientRequestId);
            sendFrame(*connIt->second, response);
            if (!completion.cancelled) {
                admission_.onGoodput(pending.tenant);
                std::lock_guard<std::mutex> lock(statsMutex_);
                ++stats_.responsesSent;
            }
        }
        pendings_.erase(it);
    }
}

void
RpcServer::sendFrame(Connection& conn, const Frame& frame)
{
    if (faults_ == nullptr) {
        encodeFrame(frame, conn.writeBuffer);
        flushWrites(conn);
        return;
    }
    // Fault path: encode separately so an injected corruption/truncation
    // touches exactly this frame, and injected network jitter can hold
    // it back without reordering the stream.
    if (conn.closeAfterFlush)
        return; // Stream already doomed by a truncation.
    std::vector<std::uint8_t> bytes;
    encodeFrame(frame, bytes);
    const double now = nowMs();
    const faults::FrameMutation mutation = faults_->mutateFrame(now, bytes, 0);
    const double delayMs = faults_->sendDelayMs(now);
    if (delayMs > 0.0 || !conn.delayed.empty()) {
        DelayedFrame delayedFrame;
        delayedFrame.releaseAtMs = now + delayMs;
        delayedFrame.bytes = std::move(bytes);
        delayedFrame.truncated = mutation == faults::FrameMutation::kTruncated;
        conn.delayed.push_back(std::move(delayedFrame));
        return;
    }
    conn.writeBuffer.insert(conn.writeBuffer.end(), bytes.begin(),
                            bytes.end());
    if (mutation == faults::FrameMutation::kTruncated)
        conn.closeAfterFlush = true;
    flushWrites(conn);
}

void
RpcServer::flushWrites(Connection& conn)
{
    while (conn.writeOffset < conn.writeBuffer.size()) {
        std::size_t n = 0;
        const IoStatus status = writeSome(
            conn.fd.fd(), conn.writeBuffer.data() + conn.writeOffset,
            conn.writeBuffer.size() - conn.writeOffset, &n);
        if (status == IoStatus::kOk && n > 0) {
            conn.writeOffset += n;
            continue;
        }
        if (status == IoStatus::kWouldBlock || n == 0) {
            if (!conn.wantWrite) {
                conn.wantWrite = true;
                poller_.modify(conn.fd.fd(), kPollIn | kPollOut);
            }
            return;
        }
        closeConnection(conn.connId);
        return;
    }
    conn.writeBuffer.clear();
    conn.writeOffset = 0;
    if (conn.wantWrite) {
        conn.wantWrite = false;
        poller_.modify(conn.fd.fd(), kPollIn);
    }
    // An injected truncation doomed this stream: the mangled prefix is
    // out, now cut the connection like a crashing peer would.
    if (conn.closeAfterFlush)
        closeConnection(conn.connId);
}

void
RpcServer::applyFaults(double now)
{
    const double stallMs = faults_->takeStallMs(now);
    if (stallMs > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(stallMs));
    if (faults_->resetPending(now) && !connectionsById_.empty())
        closeConnection(connectionsById_.begin()->first);
    if (faults_->crashPending(now)) {
        // Injected crash: the "process" disappears — listener and every
        // connection drop at once. Work already dispatched still
        // finishes (the workers are this process), but its responses go
        // nowhere, which is what a restarted shard looks like to peers.
        if (listenFd_.valid()) {
            poller_.remove(listenFd_.fd());
            listenFd_.reset();
        }
        while (!connectionsById_.empty())
            closeConnection(connectionsById_.begin()->first);
        faultDown_ = true;
    }
    if (faultDown_ && faults_->restartPending(now)) {
        // SO_REUSEADDR makes rebinding the same port safe here.
        listenFd_.reset(listenTcp(port_, &port_, config_.bindAddress,
                                  config_.backlog));
        poller_.add(listenFd_.fd(), kPollIn);
        faultDown_ = false;
    }
    releaseDelayedFrames(now);
    {
        const std::uint64_t fired = faults_->firedEvents().size();
        std::lock_guard<std::mutex> lock(statsMutex_);
        if (metric_.faultsInjected != nullptr &&
            fired > stats_.faultsInjected)
            metric_.faultsInjected->inc(fired - stats_.faultsInjected);
        stats_.faultsInjected = fired;
    }
}

void
RpcServer::releaseDelayedFrames(double now)
{
    std::vector<std::uint64_t> ready;
    for (const auto& [fd, conn] : connectionsByFd_)
        if (!conn->delayed.empty() &&
            conn->delayed.front().releaseAtMs <= now)
            ready.push_back(conn->connId);
    for (const std::uint64_t connId : ready) {
        const auto it = connectionsById_.find(connId);
        if (it == connectionsById_.end())
            continue;
        Connection& conn = *it->second;
        while (!conn.delayed.empty() &&
               conn.delayed.front().releaseAtMs <= now) {
            DelayedFrame& front = conn.delayed.front();
            conn.writeBuffer.insert(conn.writeBuffer.end(),
                                    front.bytes.begin(), front.bytes.end());
            if (front.truncated)
                conn.closeAfterFlush = true;
            conn.delayed.pop_front();
            if (conn.closeAfterFlush) {
                conn.delayed.clear();
                break;
            }
        }
        flushWrites(conn); // May close the connection (truncation).
    }
}

double
RpcServer::faultTimeoutMs(double now, double cap) const
{
    double next = faults_->nextEventMs();
    for (const auto& [fd, conn] : connectionsByFd_)
        if (!conn->delayed.empty())
            next = std::min(next, conn->delayed.front().releaseAtMs);
    const double wait = next - now;
    if (!(wait < cap)) // Also covers +infinity.
        return cap;
    return std::max(1.0, wait);
}

void
RpcServer::run()
{
    // Sampled as "rpc-loop" whenever the process profiler is running.
    // CPU-time sampling means an idle loop (blocked in poll) costs
    // nothing: its thread CPU clock does not advance.
    obs::prof::ThreadProfileScope profileScope("rpc-loop");
    std::vector<PollEvent> events;
    const int timeoutMs =
        std::max(1, static_cast<int>(config_.pollTimeoutMs));
    if (faults_ != nullptr)
        faults_->arm(nowMs());
    while (!stopRequested_.load(std::memory_order_acquire)) {
        int waitMs = timeoutMs;
        if (faults_ != nullptr) {
            const double now = nowMs();
            applyFaults(now);
            waitMs = std::max(
                1, static_cast<int>(
                       std::ceil(faultTimeoutMs(now, config_.pollTimeoutMs))));
        }
        poller_.wait(events, waitMs);
        const auto workStart = Clock::now();
        for (const PollEvent& ev : events) {
            if (ev.fd == listenFd_.fd()) {
                acceptReady();
                continue;
            }
            if (ev.fd == wakePipe_[0]) {
                drainWakePipe();
                continue;
            }
            const auto it = connectionsByFd_.find(ev.fd);
            if (it == connectionsByFd_.end())
                continue; // Closed earlier in this batch.
            Connection& conn = *it->second;
            if (ev.events & kPollErr) {
                closeConnection(conn.connId);
                continue;
            }
            if (ev.events & kPollOut)
                flushWrites(conn);
            // flushWrites may close on a hard error; re-check.
            if ((ev.events & kPollIn) &&
                connectionsByFd_.find(ev.fd) != connectionsByFd_.end())
                onReadable(conn);
        }
        processCompletions();
        // Work time only (poll return → dispatch done): the blocking
        // poll itself is idle time, not loop latency.
        loopIterations_.fetch_add(1, std::memory_order_relaxed);
        const double workMs = std::chrono::duration<double, std::milli>(
                                  Clock::now() - workStart)
                                  .count();
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            loopIterWorkMs_.add(workMs);
        }
        if (metric_.loopIterMs != nullptr)
            metric_.loopIterMs->add(workMs);
    }

    // Graceful stop: refuse new connections and submissions, finish every
    // admitted request, and flush its response (bounded by the drain
    // timeout). Requests arriving during the drain are answered BUSY.
    // (The listener may already be gone when an injected crash took it.)
    if (listenFd_.valid()) {
        poller_.remove(listenFd_.fd());
        listenFd_.reset();
    }
    server_.beginDrain();
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               config_.drainTimeoutMs));
    for (;;) {
        processCompletions();
        if (faults_ != nullptr)
            releaseDelayedFrames(nowMs());
        bool writesPending = false;
        for (const auto& [fd, conn] : connectionsByFd_) {
            if (conn->writeOffset < conn->writeBuffer.size() ||
                !conn->delayed.empty())
                writesPending = true;
        }
        if (pendings_.empty() && !writesPending)
            break;
        if (Clock::now() >= deadline) {
            util::warn("rpc: drain timeout with " +
                       std::to_string(pendings_.size()) +
                       " requests outstanding");
            break;
        }
        poller_.wait(events, timeoutMs);
        for (const PollEvent& ev : events) {
            if (ev.fd == wakePipe_[0]) {
                drainWakePipe();
                continue;
            }
            const auto it = connectionsByFd_.find(ev.fd);
            if (it == connectionsByFd_.end())
                continue;
            Connection& conn = *it->second;
            if (ev.events & kPollErr) {
                closeConnection(conn.connId);
                continue;
            }
            if (ev.events & kPollOut)
                flushWrites(conn);
            if ((ev.events & kPollIn) &&
                connectionsByFd_.find(ev.fd) != connectionsByFd_.end())
                onReadable(conn);
        }
    }
    // Wait for any stragglers the timeout abandoned, then drop the
    // connections (their responses, if any, are discarded).
    server_.drain();
    processCompletions();
    while (!connectionsById_.empty())
        closeConnection(connectionsById_.begin()->first);
}

} // namespace tpc::net
