/**
 * @file
 * Thin RAII wrappers over POSIX TCP sockets for the RPC layer.
 *
 * Everything here is non-blocking: the event loops (server and load
 * generator) own readiness, these helpers own errno handling. IPv4
 * loopback/LAN only — the reproduction serves a single ISN, not the
 * open internet.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tpc::net {

/** Owns one file descriptor; closes it on destruction. */
class FdGuard
{
  public:
    FdGuard() = default;
    explicit FdGuard(int fd) : fd_(fd) {}
    ~FdGuard() { reset(); }

    FdGuard(FdGuard&& other) noexcept : fd_(other.release()) {}
    FdGuard& operator=(FdGuard&& other) noexcept;

    FdGuard(const FdGuard&) = delete;
    FdGuard& operator=(const FdGuard&) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Closes the held descriptor (if any). */
    void reset(int fd = -1);

    /** Relinquishes ownership without closing. */
    int release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

  private:
    int fd_ = -1;
};

/**
 * Opens a non-blocking IPv4 listening socket on @p port (0 picks an
 * ephemeral port) bound to @p bindAddress. Returns the fd and stores
 * the actually bound port in @p boundPort. Fatal on any failure —
 * a server that cannot listen has nothing else to do.
 */
int listenTcp(std::uint16_t port, std::uint16_t* boundPort,
              const std::string& bindAddress = "127.0.0.1",
              int backlog = 128);

/**
 * Accepts one pending connection from @p listenFd, made non-blocking
 * with TCP_NODELAY set. Returns -1 when no connection is pending or on
 * a transient accept error.
 */
int acceptTcp(int listenFd);

/**
 * Starts a non-blocking IPv4 connect to host:port. Returns the fd
 * (connect may still be in progress — poll for writability), or -1 with
 * @p error filled on immediate failure.
 */
int connectTcp(const std::string& host, std::uint16_t port,
               std::string* error);

/** True when the in-progress connect on @p fd finished successfully. */
bool connectSucceeded(int fd);

/** I/O outcome for the non-blocking read/write helpers. */
enum class IoStatus : std::uint8_t {
    kOk,       ///< Some bytes transferred (count reported).
    kWouldBlock, ///< No progress possible right now.
    kClosed,   ///< Peer closed the connection (read only).
    kError,    ///< Hard socket error; drop the connection.
};

/** Non-blocking read into @p buffer; @p n receives the byte count. */
IoStatus readSome(int fd, std::uint8_t* buffer, std::size_t capacity,
                  std::size_t* n);

/** Non-blocking write from @p buffer; @p n receives the byte count. */
IoStatus writeSome(int fd, const std::uint8_t* buffer, std::size_t size,
                   std::size_t* n);

} // namespace tpc::net
