/**
 * @file
 * Networked RPC serving layer: a non-blocking event loop in front of the
 * ThreadedServer.
 *
 * One thread runs the event loop (epoll on Linux, poll elsewhere): it
 * accepts connections, decodes length-prefixed frames (net/frame.h),
 * passes each request through the admission controller, and submits
 * admitted requests to the ThreadedServer via its policy-driven dispatch
 * path. Workers never touch sockets: when a request's postamble finishes,
 * the completion is queued and the event loop is woken through a self-pipe
 * to encode and write the response. Requests rejected by admission control
 * are answered immediately with a BUSY frame, so an overloaded server
 * keeps its accepted-tail flat instead of queueing without bound.
 *
 * Lifecycle: construct (binds and listens immediately, so the port is
 * known before run()), call run() on a dedicated thread, requestStop()
 * from anywhere — including a signal handler — and join. run() drains the
 * ThreadedServer gracefully before returning, so every admitted request
 * is answered even across shutdown.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "faults/fault_injector.h"
#include "net/admission.h"
#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/stage_stats.h"
#include "obs/trace_recorder.h"
#include "server/threaded_server.h"

namespace tpc::net {

/** Static configuration of the RPC server. */
struct RpcServerConfig
{
    /** TCP port to listen on; 0 picks an ephemeral port (see port()). */
    std::uint16_t port = 0;
    /** Address to bind; loopback by default. */
    std::string bindAddress = "127.0.0.1";
    /** listen(2) backlog. */
    int backlog = 128;
    /** Load-shedding limits. */
    AdmissionLimits admission;
    /** Per-frame payload cap; longer frames are protocol errors. */
    std::size_t maxPayloadBytes = kDefaultMaxPayload;
    /** Event-loop poll timeout (bounds stop-request latency). */
    double pollTimeoutMs = 10.0;
    /** How long run() keeps flushing responses after stop (ms). */
    double drainTimeoutMs = 5000.0;
    /**
     * Server-side request deadline (ms from admission); 0 disables.
     * An admitted request still queued when its deadline expires is
     * cancelled before dispatch and answered with kCancelled — counted
     * distinctly from admission sheds.
     */
    double requestDeadlineMs = 0.0;
    /**
     * Base retry-throttle hint pushed on BUSY responses (ms); scaled up
     * with the dispatch-queue depth so a deeply backed-up server asks
     * for longer backoff. 0 disables the hint.
     */
    double busyRetryHintMs = 2.0;
    /** Cap on the pushed retry hint (ms). */
    double maxBusyRetryHintMs = 500.0;
};

/**
 * Builds the server-side work for one admitted request. The handler runs
 * on the event-loop thread and must not block; the returned job's
 * closures run on worker threads and may write the response bytes into
 * @p responsePayload, which stays valid until the response is sent.
 */
using RequestHandler = std::function<server::ThreadedJob(
    const Frame& request, std::vector<std::uint8_t>& responsePayload)>;

/** Event counters of one RpcServer (monotonic, read anytime). */
struct RpcServerStats
{
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t requestsReceived = 0;
    std::uint64_t responsesSent = 0;
    std::uint64_t busySent = 0;
    std::uint64_t protocolErrors = 0;
    /** kStatsRequest frames answered (not counted as requests). */
    std::uint64_t statszServed = 0;
    /** kTraceRequest frames answered (not counted as requests). */
    std::uint64_t tracezServed = 0;
    /** kProfileRequest frames answered (not counted as requests). */
    std::uint64_t profilezServed = 0;
    /** Admitted requests cancelled before dispatch (deadline expiry). */
    std::uint64_t requestsCancelled = 0;
    /** Requests whose end-to-end budget expired — rejected on arrival
     *  or cancelled while queued, never occupying a worker. Distinct
     *  from requestsCancelled (per-hop server deadline, no budget). */
    std::uint64_t deadlineExceeded = 0;
    /** Queued requests retired because their connection died (write
     *  error / disconnect) — their admission slots were released early. */
    std::uint64_t disconnectsRetired = 0;
    /** Faults the injector has fired so far (0 without an injector). */
    std::uint64_t faultsInjected = 0;
};

/** Produces the /statsz exposition text; runs on the event-loop thread
 *  and must not block (render from a cached StatsSampler snapshot). */
using StatszProvider = std::function<std::string()>;

/** Produces the /tracez Chrome-trace JSON; runs on the event-loop thread
 *  and must not block (SpanCollector::renderTracez walks only the
 *  bounded retention buffer). */
using TracezProvider = std::function<std::string()>;

/** Handles one /profilez command ("status", "start [hz]", "stop",
 *  "folded", "speedscope", "reset") and returns the response body.
 *  Runs on the event-loop thread; typically forwards to
 *  obs::prof::handleProfilezCommand. */
using ProfilezProvider = std::function<std::string(const std::string&)>;

/**
 * Event-loop health counters: how often the self-pipe was rung vs. how
 * often the loop actually woke to drain it (the gap is wake
 * coalescing), how long loop iterations spend working between polls,
 * and how long completions sat queued between a worker posting them and
 * the loop dispatching the response.
 */
struct LoopHealthSnapshot
{
    /** wake() calls (self-pipe writes) since start. */
    std::uint64_t wakeups = 0;
    /** Times the loop drained the wake pipe; wakeups - wakeDrains
     *  wake-ups were coalesced into an already-pending drain. */
    std::uint64_t wakeDrains = 0;
    std::uint64_t loopIterations = 0;
    /** Per-iteration work time (poll return → end of dispatch), ms. */
    stats::LogHistogram iterWorkMs{0.0001, 100000.0, 1.05};
    /** Completion post → response dispatch latency, ms. */
    stats::LogHistogram wakeDispatchMs{0.0001, 100000.0, 1.05};
};

/** The serving layer. One event-loop thread; never blocks workers. */
class RpcServer
{
  public:
    /**
     * Binds and listens immediately (fatal on failure).
     *
     * @param server  Execution engine (borrowed; must outlive this).
     * @param handler Request-to-job translation (copied).
     */
    RpcServer(const RpcServerConfig& config, server::ThreadedServer& server,
              RequestHandler handler);

    /** Waits for outstanding work, then closes every socket. */
    ~RpcServer();

    RpcServer(const RpcServer&) = delete;
    RpcServer& operator=(const RpcServer&) = delete;

    /** The actually bound port (differs from config when it was 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Runs the event loop until requestStop(). Before returning it stops
     * accepting, finishes every in-flight request via
     * ThreadedServer::shutdown(), and flushes buffered responses (bounded
     * by drainTimeoutMs).
     */
    void run();

    /** Asks run() to return; safe from any thread or a signal handler. */
    void requestStop();

    /**
     * Attaches a lifecycle-trace recorder (borrowed; nullptr detaches).
     * Call before run(). Net events (NET_ACCEPT/RECEIVE/RESPOND/SHED)
     * carry the client-assigned request id; pair with
     * ThreadedServer::attachTrace on the same recorder for traces that
     * span the network boundary.
     */
    void attachTrace(obs::TraceRecorder* trace, int serverId = 0);

    /** Attaches a metrics registry (borrowed; nullptr detaches). Call
     *  before run(). Registers net_accepted / net_shed / net_in_flight /
     *  net_connections / net_protocol_errors. */
    void attachMetrics(obs::MetricsRegistry* metrics);

    /**
     * Installs the /statsz provider (call before run()). kStatsRequest
     * frames are answered inline on the event loop with the provider's
     * text — they bypass admission control so introspection still works
     * while the server sheds load. Without a provider, stats requests
     * are answered with an empty kError response.
     */
    void setStatszProvider(StatszProvider provider);

    /**
     * Installs the /tracez provider (call before run()). kTraceRequest
     * frames are answered inline on the event loop with the provider's
     * Chrome-trace JSON — like /statsz they bypass admission control so
     * a slow trace can be pulled off a loaded server. Without a
     * provider, trace requests are answered with an empty kError
     * response.
     */
    void setTracezProvider(TracezProvider provider);

    /**
     * Installs the /profilez provider (call before run()). Like the
     * other admin frames, kProfileRequest is answered inline and
     * bypasses admission control, so a profile can be started and
     * dumped from a saturated server. Without a provider, profile
     * requests are answered with an empty kError response.
     */
    void setProfilezProvider(ProfilezProvider provider);

    /** Attaches a stage-stats collector (borrowed; nullptr detaches).
     *  Call before run(). The RPC layer only records admission sheds
     *  (cause "shed"); pair with ThreadedServer::attachStageStats on
     *  the same collector for completion decomposition. */
    void attachStageStats(obs::StageStatsCollector* stageStats);

    /**
     * Attaches a fault injector (borrowed; nullptr detaches). Call
     * before run(); the injector is armed when the loop starts. With no
     * injector attached every fault hook is one untaken branch. The
     * injector is driven only from the event-loop thread.
     */
    void attachFaults(faults::FaultInjector* faults);

    /** Admission counters (accepted / shed / in-flight). */
    const AdmissionController& admission() const { return admission_; }

    RpcServerStats stats() const;

    /** Event-loop health counters and histograms (thread-safe). */
    LoopHealthSnapshot loopHealth() const;

  private:
    /** One response frame held back by an injected network delay. */
    struct DelayedFrame
    {
        double releaseAtMs = 0.0;
        std::vector<std::uint8_t> bytes;
        /** The injector truncated this frame: drop the connection once
         *  the surviving prefix is flushed. */
        bool truncated = false;
    };

    /** One client connection owned by the event loop. */
    struct Connection
    {
        FdGuard fd;
        std::uint64_t connId = 0;
        FrameReader reader;
        /** Encoded-but-unwritten response bytes. */
        std::vector<std::uint8_t> writeBuffer;
        std::size_t writeOffset = 0;
        bool wantWrite = false;
        /** Frames awaiting their injected release time (fault mode). */
        std::deque<DelayedFrame> delayed;
        /** Injected truncation: close after the write buffer drains. */
        bool closeAfterFlush = false;
    };

    /** Server-side state of one admitted request. */
    struct PendingRequest
    {
        std::uint64_t pendingId = 0;
        std::uint64_t connId = 0;
        std::uint64_t clientRequestId = 0;
        std::uint8_t cls = 0;
        /** Admission tenant (frame header); slot released under it. */
        std::uint16_t tenant = 0;
        /** The request carried an end-to-end budget: a queue-expiry
         *  cancellation answers kDeadlineExceeded, not kCancelled. */
        bool budgeted = false;
        /** ThreadedServer job id, for tryCancel on disconnect. */
        std::uint64_t jobId = 0;
        /** Filled by the job's closures on worker threads; read by the
         *  event loop only after the completion notification. */
        std::vector<std::uint8_t> responsePayload;
    };

    /** One finished (or cancelled) job, queued for the event loop. */
    struct Completion
    {
        std::uint64_t pendingId = 0;
        bool cancelled = false;
        /** When the worker posted this completion (nowMs clock), for
         *  the wake→dispatch latency histogram. */
        double postedAtMs = 0.0;
    };

    void acceptReady();
    void onReadable(Connection& conn);
    void handleFrame(Connection& conn, Frame frame);
    void sendFrame(Connection& conn, const Frame& frame);
    void flushWrites(Connection& conn);
    void closeConnection(std::uint64_t connId);
    void processCompletions();
    /** Worker-side completion hook; wakes the event loop. */
    void onJobComplete(std::uint64_t pendingId);
    /** Scheduler-side cancellation hook; wakes the event loop. */
    void onJobCancelled(std::uint64_t pendingId);
    /** Fires due injector events; called once per loop iteration. */
    void applyFaults(double now);
    /** Moves due delayed frames into their write buffers. */
    void releaseDelayedFrames(double now);
    /** Ms until the injector next needs the loop (bounded by cap). */
    double faultTimeoutMs(double now, double cap) const;
    void wake();
    void drainWakePipe();
    void recordNetEvent(obs::TraceEventType type, std::uint64_t requestId);
    double nowMs() const;

    RpcServerConfig config_;
    server::ThreadedServer& server_;
    RequestHandler handler_;
    AdmissionController admission_;

    FdGuard listenFd_;
    std::uint16_t port_ = 0;
    /** Self-pipe: [0] read end polled by the loop, [1] written by
     *  requestStop() and completion hooks. */
    int wakePipe_[2] = {-1, -1};
    Poller poller_;

    std::atomic<bool> stopRequested_{false};

    /** Event-loop-only state. */
    std::map<int, std::unique_ptr<Connection>> connectionsByFd_;
    std::map<std::uint64_t, Connection*> connectionsById_;
    std::map<std::uint64_t, std::unique_ptr<PendingRequest>> pendings_;
    std::uint64_t nextConnId_ = 1;
    std::uint64_t nextPendingId_ = 1;

    /** Completions queued by workers for the event loop. */
    std::mutex completionMutex_;
    std::vector<Completion> completions_;

    /** Fault injection (borrowed; nullptr when off). */
    faults::FaultInjector* faults_ = nullptr;
    /** An injected crash dropped the listener; restart re-opens it. */
    bool faultDown_ = false;

    obs::TraceRecorder* trace_ = nullptr;
    int traceServerId_ = 0;
    obs::StageStatsCollector* stageStats_ = nullptr;
    StatszProvider statszProvider_;
    TracezProvider tracezProvider_;
    ProfilezProvider profilezProvider_;
    obs::MetricsRegistry* metrics_ = nullptr;
    struct MetricHandles
    {
        obs::Counter* accepted = nullptr;
        obs::Counter* shed = nullptr;
        obs::Counter* connections = nullptr;
        obs::Counter* protocolErrors = nullptr;
        obs::Counter* cancelled = nullptr;
        obs::Counter* disconnectsRetired = nullptr;
        obs::Counter* faultsInjected = nullptr;
        obs::Gauge* inFlight = nullptr;
        obs::Counter* wakeups = nullptr;
        obs::Counter* wakeDrains = nullptr;
        obs::Histogram* loopIterMs = nullptr;
        obs::Histogram* wakeDispatchMs = nullptr;
    } metric_;

    mutable std::mutex statsMutex_;
    RpcServerStats stats_;

    /** Loop-health lane. Counters are atomics (wake() must stay
     *  async-signal-safe); histograms live under statsMutex_. */
    std::atomic<std::uint64_t> wakeups_{0};
    std::atomic<std::uint64_t> wakeDrains_{0};
    std::atomic<std::uint64_t> loopIterations_{0};
    stats::LogHistogram loopIterWorkMs_{0.0001, 100000.0, 1.05};
    stats::LogHistogram wakeDispatchMs_{0.0001, 100000.0, 1.05};

    const std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

} // namespace tpc::net
