#include "net/poller.h"

#include <cerrno>
#include <cstring>

#include "util/logging.h"

#if defined(__linux__)
#include <sys/epoll.h>
#include <unistd.h>
#else
#include <algorithm>
#include <poll.h>
#endif

namespace tpc::net {

#if defined(__linux__)

namespace {

std::uint32_t
toEpoll(std::uint32_t events)
{
    std::uint32_t out = 0;
    if (events & kPollIn)
        out |= EPOLLIN;
    if (events & kPollOut)
        out |= EPOLLOUT;
    return out;
}

std::uint32_t
fromEpoll(std::uint32_t events)
{
    std::uint32_t out = 0;
    if (events & (EPOLLIN | EPOLLRDHUP))
        out |= kPollIn;
    if (events & EPOLLOUT)
        out |= kPollOut;
    if (events & (EPOLLERR | EPOLLHUP))
        out |= kPollErr;
    return out;
}

} // namespace

Poller::Poller()
{
    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0)
        util::fatal(std::string("epoll_create1(): ") + std::strerror(errno));
}

Poller::~Poller()
{
    if (epollFd_ >= 0)
        ::close(epollFd_);
}

void
Poller::add(int fd, std::uint32_t events)
{
    epoll_event ev{};
    ev.events = toEpoll(events);
    ev.data.fd = fd;
    TPC_CHECK(::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) == 0);
}

void
Poller::modify(int fd, std::uint32_t events)
{
    epoll_event ev{};
    ev.events = toEpoll(events);
    ev.data.fd = fd;
    TPC_CHECK(::epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev) == 0);
}

void
Poller::remove(int fd)
{
    epoll_event ev{};
    TPC_CHECK(::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, &ev) == 0);
}

int
Poller::wait(std::vector<PollEvent>& out, int timeoutMs)
{
    epoll_event events[64];
    int n;
    do {
        n = ::epoll_wait(epollFd_, events, 64, timeoutMs);
    } while (n < 0 && errno == EINTR);
    TPC_CHECK(n >= 0);
    out.clear();
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        out.push_back(
            PollEvent{events[i].data.fd, fromEpoll(events[i].events)});
    return n;
}

#else // poll(2) fallback

Poller::Poller() = default;
Poller::~Poller() = default;

void
Poller::add(int fd, std::uint32_t events)
{
    registrations_.push_back(Registration{fd, events});
}

void
Poller::modify(int fd, std::uint32_t events)
{
    for (Registration& reg : registrations_) {
        if (reg.fd == fd) {
            reg.events = events;
            return;
        }
    }
    TPC_CHECK(false);
}

void
Poller::remove(int fd)
{
    registrations_.erase(
        std::remove_if(registrations_.begin(), registrations_.end(),
                       [fd](const Registration& r) { return r.fd == fd; }),
        registrations_.end());
}

int
Poller::wait(std::vector<PollEvent>& out, int timeoutMs)
{
    std::vector<pollfd> fds;
    fds.reserve(registrations_.size());
    for (const Registration& reg : registrations_) {
        short interest = 0;
        if (reg.events & kPollIn)
            interest |= POLLIN;
        if (reg.events & kPollOut)
            interest |= POLLOUT;
        fds.push_back(pollfd{reg.fd, interest, 0});
    }
    int n;
    do {
        n = ::poll(fds.data(), fds.size(), timeoutMs);
    } while (n < 0 && errno == EINTR);
    TPC_CHECK(n >= 0);
    out.clear();
    for (const pollfd& p : fds) {
        if (p.revents == 0)
            continue;
        std::uint32_t events = 0;
        if (p.revents & POLLIN)
            events |= kPollIn;
        if (p.revents & POLLOUT)
            events |= kPollOut;
        if (p.revents & (POLLERR | POLLHUP | POLLNVAL))
            events |= kPollErr;
        out.push_back(PollEvent{p.fd, events});
    }
    return static_cast<int>(out.size());
}

#endif

} // namespace tpc::net
