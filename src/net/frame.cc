#include "net/frame.h"

#include <cstring>

#include "util/logging.h"

namespace tpc::net {
namespace {

void
putU32(std::uint8_t* out, std::uint32_t value)
{
    out[0] = static_cast<std::uint8_t>(value);
    out[1] = static_cast<std::uint8_t>(value >> 8);
    out[2] = static_cast<std::uint8_t>(value >> 16);
    out[3] = static_cast<std::uint8_t>(value >> 24);
}

void
putU64(std::uint8_t* out, std::uint64_t value)
{
    putU32(out, static_cast<std::uint32_t>(value));
    putU32(out + 4, static_cast<std::uint32_t>(value >> 32));
}

void
putU16(std::uint8_t* out, std::uint16_t value)
{
    out[0] = static_cast<std::uint8_t>(value);
    out[1] = static_cast<std::uint8_t>(value >> 8);
}

std::uint16_t
getU16(const std::uint8_t* in)
{
    return static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(in[0]) |
        static_cast<std::uint16_t>(in[1]) << 8);
}

std::uint32_t
getU32(const std::uint8_t* in)
{
    return static_cast<std::uint32_t>(in[0]) |
           static_cast<std::uint32_t>(in[1]) << 8 |
           static_cast<std::uint32_t>(in[2]) << 16 |
           static_cast<std::uint32_t>(in[3]) << 24;
}

std::uint64_t
getU64(const std::uint8_t* in)
{
    return static_cast<std::uint64_t>(getU32(in)) |
           static_cast<std::uint64_t>(getU32(in + 4)) << 32;
}

} // namespace

void
encodeFrame(const Frame& frame, std::vector<std::uint8_t>& out)
{
    TPC_CHECK(frame.payload.size() <= kDefaultMaxPayload);
    const std::size_t base = out.size();
    out.resize(base + kHeaderSize + frame.payload.size());
    std::uint8_t* h = out.data() + base;
    putU32(h, kMagic);
    h[4] = kProtocolVersion;
    h[5] = static_cast<std::uint8_t>(frame.type);
    h[6] = frame.cls;
    h[7] = static_cast<std::uint8_t>(frame.status);
    putU64(h + 8, frame.requestId);
    putU32(h + 16, static_cast<std::uint32_t>(frame.payload.size()));
    // Coverage rides only on kResponse frames; every other type keeps
    // the four bytes reserved-zero so decoders can reject corruption.
    if (frame.type == FrameType::kResponse) {
        putU16(h + 20, frame.shardsAnswered);
        putU16(h + 22, frame.shardsTotal);
    } else {
        putU32(h + 20, 0);
    }
    putU64(h + 24, frame.traceId);
    putU64(h + 32, frame.parentSpanId);
    h[40] = frame.traceFlags;
    h[41] = h[42] = h[43] = 0;
    putU64(h + 44, frame.budgetUs);
    putU16(h + 52, frame.tenant);
    // The retry hint is only meaningful on BUSY responses; keep the two
    // bytes reserved-zero elsewhere so decoders can reject corruption.
    if (frame.type == FrameType::kResponse &&
        frame.status == FrameStatus::kBusy)
        putU16(h + 54, frame.retryAfterMs);
    else
        putU16(h + 54, 0);
    if (!frame.payload.empty())
        std::memcpy(h + kHeaderSize, frame.payload.data(),
                    frame.payload.size());
}

DecodeResult
decodeFrame(const std::uint8_t* data, std::size_t size,
            std::size_t maxPayload)
{
    DecodeResult result;
    // The version byte selects the header size, so the fixed part of the
    // header (through the version) must be readable before branching.
    if (size < kHeaderSizeV1)
        return result; // kNeedMore

    auto fail = [&result](std::string why) {
        result.status = DecodeStatus::kError;
        result.error = std::move(why);
        return result;
    };

    if (getU32(data) != kMagic)
        return fail("bad magic");
    const std::uint8_t version = data[4];
    if (version < kMinProtocolVersion || version > kProtocolVersion)
        return fail("unsupported protocol version " +
                    std::to_string(static_cast<int>(version)));
    const std::size_t headerSize = version == 1   ? kHeaderSizeV1
                                   : version == 2 ? kHeaderSizeV2
                                                  : kHeaderSize;
    if (size < headerSize)
        return result; // kNeedMore
    const std::uint8_t type = data[5];
    if (type < static_cast<std::uint8_t>(FrameType::kRequest) ||
        type > static_cast<std::uint8_t>(FrameType::kProfileResponse))
        return fail("unknown frame type " +
                    std::to_string(static_cast<int>(type)));
    const std::uint8_t status = data[7];
    if (status > static_cast<std::uint8_t>(FrameStatus::kDeadlineExceeded))
        return fail("unknown frame status " +
                    std::to_string(static_cast<int>(status)));
    const std::uint32_t payloadLength = getU32(data + 16);
    if (payloadLength > maxPayload)
        return fail("payload length " + std::to_string(payloadLength) +
                    " exceeds cap " + std::to_string(maxPayload));
    const bool isResponse =
        type == static_cast<std::uint8_t>(FrameType::kResponse);
    if (!isResponse && getU32(data + 20) != 0)
        return fail("reserved header bytes must be zero");
    if (version >= 2 && (data[41] != 0 || data[42] != 0 || data[43] != 0))
        return fail("reserved trace-context bytes must be zero");
    const bool isBusyResponse =
        isResponse && status == static_cast<std::uint8_t>(FrameStatus::kBusy);
    if (version >= 3 && !isBusyResponse && getU16(data + 54) != 0)
        return fail("reserved retry-hint bytes must be zero");
    if (size < headerSize + payloadLength)
        return result; // kNeedMore: header is sane, payload still arriving.

    result.status = DecodeStatus::kFrame;
    result.consumed = headerSize + payloadLength;
    result.frame.type = static_cast<FrameType>(type);
    result.frame.cls = data[6];
    result.frame.status = static_cast<FrameStatus>(status);
    result.frame.requestId = getU64(data + 8);
    if (isResponse) {
        result.frame.shardsAnswered = getU16(data + 20);
        result.frame.shardsTotal = getU16(data + 22);
    }
    // Version-1 frames predate the trace context; leave it zeroed so the
    // serving path treats the request as untraced rather than rejecting
    // the older client.
    if (version >= 2) {
        result.frame.traceId = getU64(data + 24);
        result.frame.parentSpanId = getU64(data + 32);
        result.frame.traceFlags = data[40];
    }
    // Version-1/2 frames predate the overload context; zeroed fields mean
    // "no budget, default tenant, no retry hint" so older clients keep
    // working without deadline enforcement kicking in.
    if (version >= 3) {
        result.frame.budgetUs = getU64(data + 44);
        result.frame.tenant = getU16(data + 52);
        if (isBusyResponse)
            result.frame.retryAfterMs = getU16(data + 54);
    }
    result.frame.payload.assign(data + headerSize,
                                data + headerSize + payloadLength);
    return result;
}

void
FrameReader::append(const std::uint8_t* data, std::size_t size)
{
    if (broken_ || size == 0)
        return;
    // Compact once the consumed prefix dominates the buffer so memory
    // stays proportional to the unread suffix.
    if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
        offset_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + size);
}

bool
FrameReader::next(Frame* out)
{
    if (broken_)
        return false;
    DecodeResult result = decodeFrame(buffer_.data() + offset_,
                                      buffer_.size() - offset_, maxPayload_);
    switch (result.status) {
    case DecodeStatus::kNeedMore:
        return false;
    case DecodeStatus::kError:
        broken_ = true;
        error_ = std::move(result.error);
        return false;
    case DecodeStatus::kFrame:
        offset_ += result.consumed;
        if (offset_ == buffer_.size()) {
            buffer_.clear();
            offset_ = 0;
        }
        *out = std::move(result.frame);
        return true;
    }
    return false;
}

void
appendU64(std::vector<std::uint8_t>& out, std::uint64_t value)
{
    const std::size_t base = out.size();
    out.resize(base + 8);
    putU64(out.data() + base, value);
}

bool
readU64(const std::vector<std::uint8_t>& payload, std::size_t offset,
        std::uint64_t* value)
{
    if (payload.size() < offset + 8 || offset + 8 < offset)
        return false;
    *value = getU64(payload.data() + offset);
    return true;
}

} // namespace tpc::net
