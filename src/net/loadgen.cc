#include "net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <unistd.h>

#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"
#include "overload/budget.h"
#include "util/csv.h"
#include "util/distributions.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tpc::net {
namespace {

using Clock = std::chrono::steady_clock;

/** One persistent client connection. */
struct ClientConn
{
    FdGuard fd;
    FrameReader reader;
    std::vector<std::uint8_t> writeBuffer;
    std::size_t writeOffset = 0;
    bool wantWrite = false;
    bool alive = false;
    /** A reconnect dial is waiting for its writable event. */
    bool connecting = false;
    /** Earliest time a dead connection may re-dial. */
    double retryAtMs = 0.0;
};

/** Bookkeeping of one unanswered request. */
struct Pending
{
    /** Scheduled arrival time (ms), the open-loop latency base — the
     *  original arrival even on a retry, so retried latency includes
     *  every failed attempt and backoff wait. */
    double arrivalMs = 0.0;
    /** Connection the request went out on. */
    std::size_t conn = 0;
    /** Trace context the request carried (0 when tracing is off). */
    std::uint64_t traceId = 0;
    std::uint64_t clientSpanId = 0;
    /** Application sequence number (payload bytes 0-8). */
    std::uint64_t seq = 0;
    /** Index into the per-tenant slices (npos when untenanted). */
    std::size_t tenantIdx = static_cast<std::size_t>(-1);
    /** 1-based attempt number (1 = first send). */
    int attempt = 1;
};

/** A scheduled retry, waiting for its backoff delay. */
struct RetryItem
{
    std::uint64_t seq = 0;
    std::size_t tenantIdx = static_cast<std::size_t>(-1);
    double arrivalMs = 0.0;
    std::uint64_t traceId = 0;
    std::uint64_t clientSpanId = 0;
    /** Attempt number of the re-send. */
    int attempt = 2;
};

constexpr std::size_t kNoTenant = static_cast<std::size_t>(-1);

/**
 * Retries live in a disjoint wire-id range: first attempts keep
 * wireId == seq (applications key work off the payload sequence and may
 * assert the two match), while re-sends draw fresh ids from here so a
 * late response to an abandoned attempt can never be mistaken for the
 * answer to its retry.
 */
constexpr std::uint64_t kRetryWireIdBase = 1ull << 62;

double
msSince(Clock::time_point epoch)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - epoch)
        .count();
}

/** Connects all sockets, retrying until the timeout (the server may still
 *  be binding its port, e.g. in the CI smoke test). */
void
connectAll(const LoadGenConfig& config, std::vector<ClientConn>& conns)
{
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               config.connectTimeoutMs));
    for (ClientConn& conn : conns) {
        for (;;) {
            std::string error;
            const int fd = connectTcp(config.host, config.port, &error);
            if (fd >= 0) {
                // Wait for the non-blocking connect to resolve.
                Poller poller;
                poller.add(fd, kPollOut);
                std::vector<PollEvent> events;
                poller.wait(events, 250);
                if (!events.empty() && connectSucceeded(fd)) {
                    conn.fd.reset(fd);
                    conn.reader = FrameReader();
                    conn.alive = true;
                    break;
                }
                ::close(fd);
            }
            if (Clock::now() >= deadline)
                util::fatal("loadgen: cannot connect to " + config.host +
                            ":" + std::to_string(config.port) +
                            (error.empty() ? "" : (": " + error)));
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    }
}

/** Flushes buffered frames; returns false when the connection died. */
bool
flushConn(ClientConn& conn, Poller& poller)
{
    while (conn.writeOffset < conn.writeBuffer.size()) {
        std::size_t n = 0;
        const IoStatus status = writeSome(
            conn.fd.fd(), conn.writeBuffer.data() + conn.writeOffset,
            conn.writeBuffer.size() - conn.writeOffset, &n);
        if (status == IoStatus::kOk && n > 0) {
            conn.writeOffset += n;
            continue;
        }
        if (status == IoStatus::kWouldBlock || n == 0) {
            if (!conn.wantWrite) {
                conn.wantWrite = true;
                poller.modify(conn.fd.fd(), kPollIn | kPollOut);
            }
            return true;
        }
        return false;
    }
    conn.writeBuffer.clear();
    conn.writeOffset = 0;
    if (conn.wantWrite) {
        conn.wantWrite = false;
        poller.modify(conn.fd.fd(), kPollIn);
    }
    return true;
}

} // namespace

LoadGenResult
runLoadGen(const LoadGenConfig& config)
{
    TPC_CHECK(config.qps > 0.0);
    TPC_CHECK(config.connections >= 1);
    TPC_CHECK(config.payloadBytes >= 8);
    TPC_CHECK(config.maxAttempts >= 1);

    LoadGenResult result;

    // Per-tenant result slices plus cumulative weights for the
    // deterministic mix draw (one Rng stream per concern, so enabling
    // tenants never perturbs the arrival process).
    std::vector<double> tenantCum;
    double tenantTotalWeight = 0.0;
    for (const overload::TenantQuota& quota : config.tenants) {
        TenantLoadGenResult tenantSlice;
        tenantSlice.tenant = quota.tenant;
        tenantSlice.name = quota.name;
        tenantSlice.weight = quota.weight;
        result.perTenant.push_back(std::move(tenantSlice));
        tenantTotalWeight += std::max(0.0, quota.weight);
        tenantCum.push_back(tenantTotalWeight);
    }
    util::Rng tenantRng(config.seed ^ 0x7E4A47ull);
    auto pickTenant = [&]() -> std::size_t {
        if (tenantCum.empty() || tenantTotalWeight <= 0.0)
            return kNoTenant;
        const double u = tenantRng.uniform() * tenantTotalWeight;
        for (std::size_t i = 0; i < tenantCum.size(); ++i)
            if (u < tenantCum[i])
                return i;
        return tenantCum.size() - 1;
    };
    auto slice = [&](std::size_t idx) -> TenantLoadGenResult* {
        return idx < result.perTenant.size() ? &result.perTenant[idx]
                                             : nullptr;
    };
    auto tenantIdFor = [&](std::size_t idx) -> std::uint16_t {
        return idx < config.tenants.size() ? config.tenants[idx].tenant : 0;
    };

    overload::RetryBudget retryBudget(config.retryBudget);
    const overload::Backoff backoffPolicy(config.backoff);
    util::Rng retryRng(config.seed ^ 0xB0FFull);
    /** Scheduled re-sends, keyed by their due time (ms since epoch). */
    std::multimap<double, RetryItem> retryQueue;
    /** Client-side timeout deadlines, keyed by expiry (ms since epoch);
     *  entries whose wire id is already answered are skipped lazily. */
    std::multimap<double, std::uint64_t> timeoutQueue;
    std::uint64_t nextRetryWireId = kRetryWireIdBase;

    std::vector<ClientConn> conns(
        static_cast<std::size_t>(config.connections));
    connectAll(config, conns);

    Poller poller;
    for (const ClientConn& conn : conns)
        poller.add(conn.fd.fd(), kPollIn);

    // Constant-rate arrivals by default; an exact inhomogeneous Poisson
    // ramp (qps -> qpsEnd over durationMs) when --rate-ramp asked for a
    // non-stationary run.
    const bool ramping = config.qpsEnd > 0.0;
    if (ramping)
        TPC_CHECK_MSG(config.durationMs > 0.0,
                      "rate ramp needs a duration to ramp over");
    util::PoissonProcess flatArrivals(config.qps, util::Rng(config.seed));
    util::RampedPoissonProcess rampArrivals(
        config.qps, ramping ? config.qpsEnd : config.qps,
        config.durationMs > 0.0 ? config.durationMs : 1.0,
        util::Rng(config.seed));
    auto nextArrival = [&]() {
        return ramping ? rampArrivals.nextArrivalMs()
                       : flatArrivals.nextArrivalMs();
    };
    /** Unanswered requests keyed by wire id. */
    std::map<std::uint64_t, Pending> outstanding;

    const auto epoch = Clock::now();
    double nextArrivalMs = nextArrival();
    std::uint64_t seq = 0;
    bool sendingDone = false;
    double sendingDoneAtMs = 0.0;
    std::size_t nextConn = 0;
    std::vector<PollEvent> events;
    std::uint8_t readBuffer[16384];

    auto doneSending = [&](double nowMs) {
        if (config.numRequests > 0)
            return seq >= config.numRequests;
        return nowMs >= config.durationMs;
    };

    // A dead connection fails its outstanding requests (they can never
    // be answered on this stream) and is scheduled for a reconnect; the
    // arrival process is never throttled by it.
    auto failConn = [&](std::size_t idx, double nowMs) {
        ClientConn& conn = conns[idx];
        if (conn.fd.valid()) {
            poller.remove(conn.fd.fd());
            conn.fd.reset();
        }
        if (conn.alive)
            ++result.connectionsLost;
        conn.alive = false;
        conn.connecting = false;
        conn.wantWrite = false;
        conn.writeBuffer.clear();
        conn.writeOffset = 0;
        conn.reader = FrameReader();
        conn.retryAtMs = nowMs + config.reconnectDelayMs;
        for (auto it = outstanding.begin(); it != outstanding.end();) {
            if (it->second.conn == idx) {
                ++result.failed;
                if (TenantLoadGenResult* t = slice(it->second.tenantIdx))
                    ++t->failed;
                it = outstanding.erase(it);
            } else {
                ++it;
            }
        }
    };

    auto tryReconnect = [&](std::size_t idx, double nowMs) {
        ClientConn& conn = conns[idx];
        if (conn.alive || conn.connecting || nowMs < conn.retryAtMs)
            return;
        std::string error;
        const int fd = connectTcp(config.host, config.port, &error);
        if (fd < 0) {
            conn.retryAtMs = nowMs + config.reconnectDelayMs;
            return;
        }
        conn.fd.reset(fd);
        conn.connecting = true;
        conn.reader = FrameReader();
        poller.add(fd, kPollOut);
    };

    auto pickConn = [&]() -> std::size_t {
        std::size_t attempts = 0;
        while (!conns[nextConn].alive && attempts < conns.size()) {
            nextConn = (nextConn + 1) % conns.size();
            ++attempts;
        }
        if (!conns[nextConn].alive)
            return conns.size();
        const std::size_t idx = nextConn;
        nextConn = (nextConn + 1) % conns.size();
        return idx;
    };

    // Arms the client-side give-up clock for one attempt: the per-attempt
    // timeout and/or the end-to-end budget (which is anchored at the
    // *scheduled* arrival, so retries inherit the original allowance).
    auto scheduleTimeout = [&](std::uint64_t wireId, const Pending& p,
                               double nowMs) {
        double dueMs = std::numeric_limits<double>::infinity();
        if (config.timeoutMs > 0.0)
            dueMs = nowMs + config.timeoutMs;
        if (config.budgetMs > 0.0)
            dueMs = std::min(dueMs, p.arrivalMs + config.budgetMs);
        if (std::isfinite(dueMs))
            timeoutQueue.emplace(dueMs, wireId);
    };

    // Encodes and sends one attempt (first send or re-send). Returns
    // false when every connection is down; the caller accounts for it.
    auto sendAttempt = [&](std::uint64_t wireId, const Pending& p,
                           double nowMs) -> bool {
        const std::size_t connIdx = pickConn();
        if (connIdx == conns.size())
            return false;
        ClientConn& conn = conns[connIdx];
        Frame frame;
        frame.type = FrameType::kRequest;
        frame.cls = config.cls;
        frame.requestId = wireId;
        frame.tenant = tenantIdFor(p.tenantIdx);
        if (config.budgetMs > 0.0) {
            // Stamp the *remaining* allowance; an already-exhausted
            // budget still goes out as the minimum stampable value so
            // the server's earliest-hop rejection (not a silent client
            // drop) is what retires it.
            const double remainingMs =
                p.arrivalMs + config.budgetMs - nowMs;
            frame.budgetUs = std::max<std::uint64_t>(
                overload::msToUs(remainingMs), 1);
        }
        if (p.traceId != 0) {
            frame.traceId = p.traceId;
            frame.parentSpanId = p.clientSpanId;
            frame.traceFlags = kTraceFlagSampled;
        }
        appendU64(frame.payload, p.seq);
        if (frame.payload.size() < config.payloadBytes)
            frame.payload.resize(config.payloadBytes, 0);
        if (config.payloadFn)
            config.payloadFn(p.seq, frame.payload);
        encodeFrame(frame, conn.writeBuffer);
        Pending stored = p;
        stored.conn = connIdx;
        outstanding[wireId] = stored;
        scheduleTimeout(wireId, stored, nowMs);
        if (!flushConn(conn, poller))
            failConn(connIdx, nowMs);
        return true;
    };

    // Decides whether a failed attempt gets another go; true means a
    // retry was scheduled and final-outcome accounting is deferred to
    // it. Disciplined mode retries only sheds (BUSY), pays a retry-
    // budget token, backs off no less than the server's pushed hint and
    // gives up when the backoff would outlive the deadline budget; naive
    // mode retries sheds *and* timeouts after a short fixed delay with
    // no gates — the storm baseline.
    auto scheduleRetry = [&](const Pending& p, double nowMs,
                             double serverHintMs, bool fromTimeout) -> bool {
        if (!config.retryEnabled || p.attempt >= config.maxAttempts)
            return false;
        double delayMs = 0.0;
        if (config.naiveRetries) {
            delayMs = config.backoff.baseDelayMs;
        } else {
            if (fromTimeout)
                return false;
            if (config.budgetMs > 0.0 &&
                nowMs + config.backoff.baseDelayMs >=
                    p.arrivalMs + config.budgetMs)
                return false;
            if (!retryBudget.tryRetry())
                return false;
            delayMs =
                backoffPolicy.delayMs(p.attempt, retryRng, serverHintMs);
            if (config.budgetMs > 0.0 &&
                nowMs + delayMs >= p.arrivalMs + config.budgetMs)
                delayMs = std::max(
                    0.0, p.arrivalMs + config.budgetMs - nowMs - 1.0);
        }
        RetryItem item;
        item.seq = p.seq;
        item.tenantIdx = p.tenantIdx;
        item.arrivalMs = p.arrivalMs;
        item.traceId = p.traceId;
        item.clientSpanId = p.clientSpanId;
        item.attempt = p.attempt + 1;
        retryQueue.emplace(nowMs + delayMs, item);
        return true;
    };

    auto processTimeouts = [&](double nowMs) {
        while (!timeoutQueue.empty() &&
               timeoutQueue.begin()->first <= nowMs) {
            const std::uint64_t wireId = timeoutQueue.begin()->second;
            timeoutQueue.erase(timeoutQueue.begin());
            const auto it = outstanding.find(wireId);
            if (it == outstanding.end())
                continue; // Answered in time.
            const Pending timedOut = it->second;
            // Abandon the attempt: a late response now finds no entry
            // and is discarded, never double-counted.
            outstanding.erase(it);
            if (scheduleRetry(timedOut, nowMs, 0.0, /*fromTimeout=*/true))
                continue;
            ++result.timeouts;
            if (TenantLoadGenResult* t = slice(timedOut.tenantIdx))
                ++t->timeouts;
        }
    };

    auto processRetries = [&](double nowMs) {
        while (!retryQueue.empty() && retryQueue.begin()->first <= nowMs) {
            const RetryItem item = retryQueue.begin()->second;
            retryQueue.erase(retryQueue.begin());
            if (config.budgetMs > 0.0 &&
                nowMs >= item.arrivalMs + config.budgetMs) {
                // The budget ran out while backing off.
                ++result.timeouts;
                if (TenantLoadGenResult* t = slice(item.tenantIdx))
                    ++t->timeouts;
                continue;
            }
            Pending pending;
            pending.arrivalMs = item.arrivalMs;
            pending.seq = item.seq;
            pending.tenantIdx = item.tenantIdx;
            pending.traceId = item.traceId;
            pending.clientSpanId = item.clientSpanId;
            pending.attempt = item.attempt;
            const std::uint64_t wireId = nextRetryWireId++;
            ++result.retries;
            if (TenantLoadGenResult* t = slice(item.tenantIdx))
                ++t->retries;
            if (!sendAttempt(wireId, pending, nowMs)) {
                ++result.failed;
                if (TenantLoadGenResult* t = slice(item.tenantIdx))
                    ++t->failed;
            }
        }
    };

    for (;;) {
        double nowMs = msSince(epoch);

        if (!sendingDone)
            for (std::size_t i = 0; i < conns.size(); ++i)
                tryReconnect(i, nowMs);

        // An interrupt ends the arrival process, not the run: the drain
        // below still collects outstanding responses so the partial
        // latency record is complete for every request actually sent.
        if (!sendingDone && config.stopFlag != nullptr &&
            config.stopFlag->load(std::memory_order_relaxed)) {
            sendingDone = true;
            sendingDoneAtMs = nowMs;
        }

        // Client-side give-up clocks and due backoffs run before sends
        // so a freed retry token or expired attempt is visible to this
        // tick's decisions.
        processTimeouts(nowMs);
        processRetries(nowMs);

        // Open-loop send: emit every arrival whose time has come, without
        // ever waiting on a response. A backed-up connection buffers the
        // frame; the request is still timestamped at its scheduled
        // arrival, so server-side delay is measured, not masked.
        while (!sendingDone && nextArrivalMs <= nowMs) {
            Pending pending;
            pending.arrivalMs = nextArrivalMs;
            pending.seq = seq;
            pending.tenantIdx = pickTenant();
            pending.attempt = 1;
            if (config.trace) {
                // The client span is the trace root; the server's span
                // parents off it. Both ids derive from (seed, seq), so
                // reruns produce identical ids.
                pending.traceId = obs::deriveTraceId(config.seed, seq);
                pending.clientSpanId =
                    obs::deriveTraceId(config.seed ^ 0xC11E57ull, seq);
            }
            ++result.sent;
            if (TenantLoadGenResult* t = slice(pending.tenantIdx))
                ++t->sent;
            if (!sendAttempt(seq, pending, nowMs)) {
                // Every connection is down. The schedule keeps running —
                // the arrival is recorded as failed instead of silently
                // reducing the offered load; reconnects restore service.
                ++result.failed;
                if (TenantLoadGenResult* t = slice(pending.tenantIdx))
                    ++t->failed;
            }
            ++seq;
            nextArrivalMs = nextArrival();
            if (doneSending(nowMs)) {
                sendingDone = true;
                sendingDoneAtMs = nowMs;
            }
        }
        if (!sendingDone && doneSending(nowMs)) {
            sendingDone = true;
            sendingDoneAtMs = nowMs;
        }

        if (sendingDone) {
            const bool anyAlive =
                std::any_of(conns.begin(), conns.end(),
                            [](const ClientConn& c) { return c.alive; });
            if ((outstanding.empty() && retryQueue.empty()) || !anyAlive ||
                nowMs - sendingDoneAtMs >= config.drainTimeoutMs)
                break;
        }

        // Sleep until the next arrival, timeout or backoff is due
        // (capped so response reads and the drain check stay responsive).
        double untilMs = 10.0;
        if (!sendingDone)
            untilMs = std::min(untilMs, nextArrivalMs - nowMs);
        if (!timeoutQueue.empty())
            untilMs =
                std::min(untilMs, timeoutQueue.begin()->first - nowMs);
        if (!retryQueue.empty())
            untilMs = std::min(untilMs, retryQueue.begin()->first - nowMs);
        const int timeoutMs =
            std::clamp(static_cast<int>(std::ceil(untilMs)), 0, 10);
        poller.wait(events, timeoutMs);

        for (const PollEvent& ev : events) {
            std::size_t connIdx = conns.size();
            for (std::size_t i = 0; i < conns.size(); ++i) {
                if ((conns[i].alive || conns[i].connecting) &&
                    conns[i].fd.valid() && conns[i].fd.fd() == ev.fd) {
                    connIdx = i;
                    break;
                }
            }
            if (connIdx == conns.size())
                continue;
            ClientConn& conn = conns[connIdx];
            nowMs = msSince(epoch);
            if (conn.connecting) {
                if ((ev.events & kPollErr) ||
                    !connectSucceeded(conn.fd.fd())) {
                    failConn(connIdx, nowMs);
                    continue;
                }
                conn.connecting = false;
                conn.alive = true;
                ++result.reconnects;
                poller.modify(conn.fd.fd(), kPollIn);
                continue;
            }
            if (ev.events & kPollErr) {
                failConn(connIdx, nowMs);
                continue;
            }
            if ((ev.events & kPollOut) && !flushConn(conn, poller)) {
                failConn(connIdx, nowMs);
                continue;
            }
            if (!conn.alive || !(ev.events & kPollIn))
                continue;

            for (;;) {
                std::size_t n = 0;
                const IoStatus status = readSome(conn.fd.fd(), readBuffer,
                                                 sizeof(readBuffer), &n);
                if (status == IoStatus::kOk) {
                    conn.reader.append(readBuffer, n);
                    continue;
                }
                if (status == IoStatus::kWouldBlock)
                    break;
                // Mid-stream disconnect: consume any complete frames
                // already buffered, then fail the rest of the stream.
                conn.alive = false;
                break;
            }
            const bool streamDied = !conn.alive;
            conn.alive = true; // Frames below still need the reader.

            Frame response;
            while (conn.reader.next(&response)) {
                const auto it = outstanding.find(response.requestId);
                if (it == outstanding.end())
                    continue; // Duplicate or unknown id; ignore.
                const double responseMs =
                    msSince(epoch) - it->second.arrivalMs;
                const Pending answered = it->second;
                outstanding.erase(it);
                TenantLoadGenResult* tenant = slice(answered.tenantIdx);
                switch (response.status) {
                case FrameStatus::kOk: {
                    ++result.completed;
                    if (tenant != nullptr)
                        ++tenant->completed;
                    retryBudget.onSuccess();
                    if (response.degraded()) {
                        ++result.degraded;
                        if (tenant != nullptr)
                            ++tenant->degraded;
                    }
                    // Warm-up gate: keyed off the *scheduled* arrival
                    // (open-loop convention), so a late response to an
                    // early request is still warm-up, not steady state.
                    const bool warmup =
                        config.warmupMs > 0.0 &&
                        answered.arrivalMs < config.warmupMs;
                    if (warmup) {
                        ++result.warmupExcluded;
                    } else {
                        result.latency.add(responseMs);
                        if (tenant != nullptr)
                            tenant->latency.add(responseMs);
                        if (answered.traceId != 0 &&
                            config.targetMs > 0.0 &&
                            responseMs > config.targetMs)
                            result.overTarget.push_back(OverTargetRequest{
                                answered.seq, answered.traceId,
                                responseMs});
                    }
                    if (config.spans != nullptr && answered.traceId != 0) {
                        obs::Span client;
                        client.traceId = answered.traceId;
                        client.spanId = answered.clientSpanId;
                        client.parentSpanId = 0;
                        client.kind = obs::SpanKind::kClient;
                        client.cls = config.cls;
                        client.startMs = obs::spanNowMs() - responseMs;
                        client.durMs = responseMs;
                        client.targetMs = config.targetMs;
                        client.setName("client");
                        config.spans->record(client);
                        config.spans->finishTrace(answered.traceId,
                                                  config.cls, responseMs,
                                                  config.targetMs);
                    }
                    break;
                }
                case FrameStatus::kBusy: {
                    // The shed may earn another attempt; when it does,
                    // final-outcome accounting moves to the retry.
                    const double hintMs =
                        static_cast<double>(response.retryAfterMs);
                    if (scheduleRetry(answered, msSince(epoch), hintMs,
                                      /*fromTimeout=*/false))
                        break;
                    ++result.shed;
                    if (tenant != nullptr)
                        ++tenant->shed;
                    break;
                }
                case FrameStatus::kError:
                    ++result.errors;
                    if (tenant != nullptr)
                        ++tenant->errors;
                    break;
                case FrameStatus::kCancelled:
                    ++result.cancelled;
                    if (tenant != nullptr)
                        ++tenant->cancelled;
                    break;
                case FrameStatus::kDeadlineExceeded:
                    // Some hop found the end-to-end budget exhausted;
                    // by definition no retry could fit in it.
                    ++result.deadlineExceeded;
                    if (tenant != nullptr)
                        ++tenant->deadlineExceeded;
                    break;
                }
            }
            if (conn.reader.broken()) {
                util::warn("loadgen: protocol error from server: " +
                           conn.reader.error());
                failConn(connIdx, nowMs);
                continue;
            }
            if (streamDied)
                failConn(connIdx, nowMs);
        }
    }

    // Attempts still on the wire and backoffs that never fired are both
    // "never answered" — they are counted, not silently dropped.
    result.unanswered = outstanding.size() + retryQueue.size();
    for (const auto& [wireId, p] : outstanding)
        if (TenantLoadGenResult* t = slice(p.tenantIdx))
            ++t->unanswered;
    for (const auto& [dueMs, item] : retryQueue)
        if (TenantLoadGenResult* t = slice(item.tenantIdx))
            ++t->unanswered;
    result.retriesSuppressed = retryBudget.suppressed();
    result.elapsedMs = msSince(epoch);
    result.achievedQps = result.elapsedMs > 0.0
                             ? result.sent / result.elapsedMs * 1000.0
                             : 0.0;
    return result;
}

namespace {

std::string
hexTraceId(std::uint64_t traceId)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(traceId));
    return std::string(buf);
}

} // namespace

std::vector<std::string>
loadGenCsvHeader()
{
    std::vector<std::string> header = {
        "target_qps",         "achieved_qps",
        "connections",        "sent",
        "completed",          "degraded",
        "shed",               "errors",
        "cancelled",          "deadline_exceeded",
        "timeouts",           "retries",
        "retries_suppressed", "failed",
        "unanswered",         "elapsed_ms",
        "warmup_ms",          "warmup_excluded"};
    const auto latencyHeader =
        stats::LatencySummary::csvHeader("response_ms_");
    header.insert(header.end(), latencyHeader.begin(), latencyHeader.end());
    // The slowest over-target request's trace id (16-digit hex; all
    // zeros when none), joinable against /tracez output.
    header.push_back("trace_id");
    header.push_back("tenant");
    header.push_back("tenant_weight");
    return header;
}

void
writeLoadGenCsv(const LoadGenResult& result, const LoadGenConfig& config,
                const std::string& path)
{
    util::CsvWriter csv(path);
    csv.writeRow(loadGenCsvHeader());

    double totalWeight = 0.0;
    for (const overload::TenantQuota& quota : config.tenants)
        totalWeight += std::max(0.0, quota.weight);

    std::vector<std::string> row = {
        std::to_string(config.qps),
        std::to_string(result.achievedQps),
        std::to_string(config.connections),
        std::to_string(result.sent),
        std::to_string(result.completed),
        std::to_string(result.degraded),
        std::to_string(result.shed),
        std::to_string(result.errors),
        std::to_string(result.cancelled),
        std::to_string(result.deadlineExceeded),
        std::to_string(result.timeouts),
        std::to_string(result.retries),
        std::to_string(result.retriesSuppressed),
        std::to_string(result.failed),
        std::to_string(result.unanswered),
        std::to_string(result.elapsedMs),
        std::to_string(config.warmupMs),
        std::to_string(result.warmupExcluded)};
    const auto latencyRow = result.summary().toCsvRow();
    row.insert(row.end(), latencyRow.begin(), latencyRow.end());
    row.push_back(hexTraceId(result.worstOverTarget().traceId));
    row.push_back("all");
    row.push_back(std::to_string(totalWeight > 0.0 ? totalWeight : 1.0));
    csv.writeRow(row);

    // One row per configured tenant (none when the run was untenanted,
    // so single-tenant consumers still see exactly header + totals).
    for (const TenantLoadGenResult& t : result.perTenant) {
        const double share =
            totalWeight > 0.0 ? std::max(0.0, t.weight) / totalWeight : 0.0;
        std::vector<std::string> tenantRow = {
            std::to_string(config.qps * share),
            std::to_string(result.elapsedMs > 0.0
                               ? t.sent / result.elapsedMs * 1000.0
                               : 0.0),
            std::to_string(config.connections),
            std::to_string(t.sent),
            std::to_string(t.completed),
            std::to_string(t.degraded),
            std::to_string(t.shed),
            std::to_string(t.errors),
            std::to_string(t.cancelled),
            std::to_string(t.deadlineExceeded),
            std::to_string(t.timeouts),
            std::to_string(t.retries),
            "0", // The retry-token bucket is shared, not per-tenant.
            std::to_string(t.failed),
            std::to_string(t.unanswered),
            std::to_string(result.elapsedMs),
            std::to_string(config.warmupMs),
            "0"};
        const auto tenantLatency = t.summary().toCsvRow();
        tenantRow.insert(tenantRow.end(), tenantLatency.begin(),
                         tenantLatency.end());
        tenantRow.push_back(hexTraceId(0));
        tenantRow.push_back(t.name.empty() ? std::to_string(t.tenant)
                                           : t.name);
        tenantRow.push_back(std::to_string(t.weight));
        csv.writeRow(tenantRow);
    }
}

void
writeLoadGenTraceCsv(const LoadGenResult& result, const std::string& path)
{
    util::CsvWriter csv(path);
    csv.writeRow({"seq", "trace_id", "response_ms"});
    for (const OverTargetRequest& req : result.overTarget)
        csv.writeRow({std::to_string(req.seq), hexTraceId(req.traceId),
                      std::to_string(req.responseMs)});
}

} // namespace tpc::net
