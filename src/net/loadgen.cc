#include "net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <thread>
#include <unistd.h>

#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"
#include "util/csv.h"
#include "util/distributions.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tpc::net {
namespace {

using Clock = std::chrono::steady_clock;

/** One persistent client connection. */
struct ClientConn
{
    FdGuard fd;
    FrameReader reader;
    std::vector<std::uint8_t> writeBuffer;
    std::size_t writeOffset = 0;
    bool wantWrite = false;
    bool alive = false;
    /** A reconnect dial is waiting for its writable event. */
    bool connecting = false;
    /** Earliest time a dead connection may re-dial. */
    double retryAtMs = 0.0;
};

/** Bookkeeping of one unanswered request. */
struct Pending
{
    /** Scheduled arrival time (ms), the open-loop latency base. */
    double arrivalMs = 0.0;
    /** Connection the request went out on. */
    std::size_t conn = 0;
    /** Trace context the request carried (0 when tracing is off). */
    std::uint64_t traceId = 0;
    std::uint64_t clientSpanId = 0;
};

double
msSince(Clock::time_point epoch)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - epoch)
        .count();
}

/** Connects all sockets, retrying until the timeout (the server may still
 *  be binding its port, e.g. in the CI smoke test). */
void
connectAll(const LoadGenConfig& config, std::vector<ClientConn>& conns)
{
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               config.connectTimeoutMs));
    for (ClientConn& conn : conns) {
        for (;;) {
            std::string error;
            const int fd = connectTcp(config.host, config.port, &error);
            if (fd >= 0) {
                // Wait for the non-blocking connect to resolve.
                Poller poller;
                poller.add(fd, kPollOut);
                std::vector<PollEvent> events;
                poller.wait(events, 250);
                if (!events.empty() && connectSucceeded(fd)) {
                    conn.fd.reset(fd);
                    conn.reader = FrameReader();
                    conn.alive = true;
                    break;
                }
                ::close(fd);
            }
            if (Clock::now() >= deadline)
                util::fatal("loadgen: cannot connect to " + config.host +
                            ":" + std::to_string(config.port) +
                            (error.empty() ? "" : (": " + error)));
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    }
}

/** Flushes buffered frames; returns false when the connection died. */
bool
flushConn(ClientConn& conn, Poller& poller)
{
    while (conn.writeOffset < conn.writeBuffer.size()) {
        std::size_t n = 0;
        const IoStatus status = writeSome(
            conn.fd.fd(), conn.writeBuffer.data() + conn.writeOffset,
            conn.writeBuffer.size() - conn.writeOffset, &n);
        if (status == IoStatus::kOk && n > 0) {
            conn.writeOffset += n;
            continue;
        }
        if (status == IoStatus::kWouldBlock || n == 0) {
            if (!conn.wantWrite) {
                conn.wantWrite = true;
                poller.modify(conn.fd.fd(), kPollIn | kPollOut);
            }
            return true;
        }
        return false;
    }
    conn.writeBuffer.clear();
    conn.writeOffset = 0;
    if (conn.wantWrite) {
        conn.wantWrite = false;
        poller.modify(conn.fd.fd(), kPollIn);
    }
    return true;
}

} // namespace

LoadGenResult
runLoadGen(const LoadGenConfig& config)
{
    TPC_CHECK(config.qps > 0.0);
    TPC_CHECK(config.connections >= 1);
    TPC_CHECK(config.payloadBytes >= 8);

    LoadGenResult result;
    std::vector<ClientConn> conns(
        static_cast<std::size_t>(config.connections));
    connectAll(config, conns);

    Poller poller;
    for (const ClientConn& conn : conns)
        poller.add(conn.fd.fd(), kPollIn);

    // Constant-rate arrivals by default; an exact inhomogeneous Poisson
    // ramp (qps -> qpsEnd over durationMs) when --rate-ramp asked for a
    // non-stationary run.
    const bool ramping = config.qpsEnd > 0.0;
    if (ramping)
        TPC_CHECK_MSG(config.durationMs > 0.0,
                      "rate ramp needs a duration to ramp over");
    util::PoissonProcess flatArrivals(config.qps, util::Rng(config.seed));
    util::RampedPoissonProcess rampArrivals(
        config.qps, ramping ? config.qpsEnd : config.qps,
        config.durationMs > 0.0 ? config.durationMs : 1.0,
        util::Rng(config.seed));
    auto nextArrival = [&]() {
        return ramping ? rampArrivals.nextArrivalMs()
                       : flatArrivals.nextArrivalMs();
    };
    /** Unanswered requests keyed by wire id. */
    std::map<std::uint64_t, Pending> outstanding;

    const auto epoch = Clock::now();
    double nextArrivalMs = nextArrival();
    std::uint64_t seq = 0;
    bool sendingDone = false;
    double sendingDoneAtMs = 0.0;
    std::size_t nextConn = 0;
    std::vector<PollEvent> events;
    std::uint8_t readBuffer[16384];

    auto doneSending = [&](double nowMs) {
        if (config.numRequests > 0)
            return seq >= config.numRequests;
        return nowMs >= config.durationMs;
    };

    // A dead connection fails its outstanding requests (they can never
    // be answered on this stream) and is scheduled for a reconnect; the
    // arrival process is never throttled by it.
    auto failConn = [&](std::size_t idx, double nowMs) {
        ClientConn& conn = conns[idx];
        if (conn.fd.valid()) {
            poller.remove(conn.fd.fd());
            conn.fd.reset();
        }
        if (conn.alive)
            ++result.connectionsLost;
        conn.alive = false;
        conn.connecting = false;
        conn.wantWrite = false;
        conn.writeBuffer.clear();
        conn.writeOffset = 0;
        conn.reader = FrameReader();
        conn.retryAtMs = nowMs + config.reconnectDelayMs;
        for (auto it = outstanding.begin(); it != outstanding.end();) {
            if (it->second.conn == idx) {
                ++result.failed;
                it = outstanding.erase(it);
            } else {
                ++it;
            }
        }
    };

    auto tryReconnect = [&](std::size_t idx, double nowMs) {
        ClientConn& conn = conns[idx];
        if (conn.alive || conn.connecting || nowMs < conn.retryAtMs)
            return;
        std::string error;
        const int fd = connectTcp(config.host, config.port, &error);
        if (fd < 0) {
            conn.retryAtMs = nowMs + config.reconnectDelayMs;
            return;
        }
        conn.fd.reset(fd);
        conn.connecting = true;
        conn.reader = FrameReader();
        poller.add(fd, kPollOut);
    };

    for (;;) {
        double nowMs = msSince(epoch);

        if (!sendingDone)
            for (std::size_t i = 0; i < conns.size(); ++i)
                tryReconnect(i, nowMs);

        // An interrupt ends the arrival process, not the run: the drain
        // below still collects outstanding responses so the partial
        // latency record is complete for every request actually sent.
        if (!sendingDone && config.stopFlag != nullptr &&
            config.stopFlag->load(std::memory_order_relaxed)) {
            sendingDone = true;
            sendingDoneAtMs = nowMs;
        }

        // Open-loop send: emit every arrival whose time has come, without
        // ever waiting on a response. A backed-up connection buffers the
        // frame; the request is still timestamped at its scheduled
        // arrival, so server-side delay is measured, not masked.
        while (!sendingDone && nextArrivalMs <= nowMs) {
            std::size_t attempts = 0;
            while (!conns[nextConn].alive && attempts < conns.size()) {
                nextConn = (nextConn + 1) % conns.size();
                ++attempts;
            }
            if (!conns[nextConn].alive) {
                // Every connection is down. The schedule keeps running —
                // the arrival is recorded as failed instead of silently
                // reducing the offered load; reconnects restore service.
                ++result.sent;
                ++result.failed;
                ++seq;
                nextArrivalMs = nextArrival();
                if (doneSending(nowMs)) {
                    sendingDone = true;
                    sendingDoneAtMs = nowMs;
                }
                continue;
            }
            const std::size_t connIdx = nextConn;
            ClientConn& conn = conns[connIdx];
            nextConn = (nextConn + 1) % conns.size();

            Frame frame;
            frame.type = FrameType::kRequest;
            frame.cls = config.cls;
            frame.requestId = seq;
            Pending pending{nextArrivalMs, connIdx, 0, 0};
            if (config.trace) {
                // The client span is the trace root; the server's span
                // parents off it. Both ids derive from (seed, seq), so
                // reruns produce identical ids.
                pending.traceId = obs::deriveTraceId(config.seed, seq);
                pending.clientSpanId =
                    obs::deriveTraceId(config.seed ^ 0xC11E57ull, seq);
                frame.traceId = pending.traceId;
                frame.parentSpanId = pending.clientSpanId;
                frame.traceFlags = kTraceFlagSampled;
            }
            appendU64(frame.payload, seq);
            if (frame.payload.size() < config.payloadBytes)
                frame.payload.resize(config.payloadBytes, 0);
            if (config.payloadFn)
                config.payloadFn(seq, frame.payload);
            encodeFrame(frame, conn.writeBuffer);

            outstanding[seq] = pending;
            ++result.sent;
            ++seq;
            nextArrivalMs = nextArrival();
            if (doneSending(nowMs)) {
                sendingDone = true;
                sendingDoneAtMs = nowMs;
            }
            if (!flushConn(conn, poller))
                failConn(connIdx, nowMs);
        }
        if (!sendingDone && doneSending(nowMs)) {
            sendingDone = true;
            sendingDoneAtMs = nowMs;
        }

        if (sendingDone) {
            const bool anyAlive =
                std::any_of(conns.begin(), conns.end(),
                            [](const ClientConn& c) { return c.alive; });
            if (outstanding.empty() || !anyAlive ||
                nowMs - sendingDoneAtMs >= config.drainTimeoutMs)
                break;
        }

        // Sleep until the next arrival is due (capped so response reads
        // and the drain check stay responsive).
        int timeoutMs = 10;
        if (!sendingDone) {
            const double untilNext = nextArrivalMs - nowMs;
            timeoutMs = std::clamp(
                static_cast<int>(std::ceil(untilNext)), 0, 10);
        }
        poller.wait(events, timeoutMs);

        for (const PollEvent& ev : events) {
            std::size_t connIdx = conns.size();
            for (std::size_t i = 0; i < conns.size(); ++i) {
                if ((conns[i].alive || conns[i].connecting) &&
                    conns[i].fd.valid() && conns[i].fd.fd() == ev.fd) {
                    connIdx = i;
                    break;
                }
            }
            if (connIdx == conns.size())
                continue;
            ClientConn& conn = conns[connIdx];
            nowMs = msSince(epoch);
            if (conn.connecting) {
                if ((ev.events & kPollErr) ||
                    !connectSucceeded(conn.fd.fd())) {
                    failConn(connIdx, nowMs);
                    continue;
                }
                conn.connecting = false;
                conn.alive = true;
                ++result.reconnects;
                poller.modify(conn.fd.fd(), kPollIn);
                continue;
            }
            if (ev.events & kPollErr) {
                failConn(connIdx, nowMs);
                continue;
            }
            if ((ev.events & kPollOut) && !flushConn(conn, poller)) {
                failConn(connIdx, nowMs);
                continue;
            }
            if (!conn.alive || !(ev.events & kPollIn))
                continue;

            for (;;) {
                std::size_t n = 0;
                const IoStatus status = readSome(conn.fd.fd(), readBuffer,
                                                 sizeof(readBuffer), &n);
                if (status == IoStatus::kOk) {
                    conn.reader.append(readBuffer, n);
                    continue;
                }
                if (status == IoStatus::kWouldBlock)
                    break;
                // Mid-stream disconnect: consume any complete frames
                // already buffered, then fail the rest of the stream.
                conn.alive = false;
                break;
            }
            const bool streamDied = !conn.alive;
            conn.alive = true; // Frames below still need the reader.

            Frame response;
            while (conn.reader.next(&response)) {
                const auto it = outstanding.find(response.requestId);
                if (it == outstanding.end())
                    continue; // Duplicate or unknown id; ignore.
                const double responseMs =
                    msSince(epoch) - it->second.arrivalMs;
                const Pending answered = it->second;
                outstanding.erase(it);
                switch (response.status) {
                case FrameStatus::kOk: {
                    ++result.completed;
                    if (response.degraded())
                        ++result.degraded;
                    // Warm-up gate: keyed off the *scheduled* arrival
                    // (open-loop convention), so a late response to an
                    // early request is still warm-up, not steady state.
                    const bool warmup =
                        config.warmupMs > 0.0 &&
                        answered.arrivalMs < config.warmupMs;
                    if (warmup) {
                        ++result.warmupExcluded;
                    } else {
                        result.latency.add(responseMs);
                        if (answered.traceId != 0 &&
                            config.targetMs > 0.0 &&
                            responseMs > config.targetMs)
                            result.overTarget.push_back(OverTargetRequest{
                                response.requestId, answered.traceId,
                                responseMs});
                    }
                    if (config.spans != nullptr && answered.traceId != 0) {
                        obs::Span client;
                        client.traceId = answered.traceId;
                        client.spanId = answered.clientSpanId;
                        client.parentSpanId = 0;
                        client.kind = obs::SpanKind::kClient;
                        client.cls = config.cls;
                        client.startMs = obs::spanNowMs() - responseMs;
                        client.durMs = responseMs;
                        client.targetMs = config.targetMs;
                        client.setName("client");
                        config.spans->record(client);
                        config.spans->finishTrace(answered.traceId,
                                                  config.cls, responseMs,
                                                  config.targetMs);
                    }
                    break;
                }
                case FrameStatus::kBusy:
                    ++result.shed;
                    break;
                case FrameStatus::kError:
                    ++result.errors;
                    break;
                case FrameStatus::kCancelled:
                    ++result.cancelled;
                    break;
                }
            }
            if (conn.reader.broken()) {
                util::warn("loadgen: protocol error from server: " +
                           conn.reader.error());
                failConn(connIdx, nowMs);
                continue;
            }
            if (streamDied)
                failConn(connIdx, nowMs);
        }
    }

    result.unanswered = outstanding.size();
    result.elapsedMs = msSince(epoch);
    result.achievedQps = result.elapsedMs > 0.0
                             ? result.sent / result.elapsedMs * 1000.0
                             : 0.0;
    return result;
}

namespace {

std::string
hexTraceId(std::uint64_t traceId)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(traceId));
    return std::string(buf);
}

} // namespace

void
writeLoadGenCsv(const LoadGenResult& result, const LoadGenConfig& config,
                const std::string& path)
{
    util::CsvWriter csv(path);
    std::vector<std::string> header = {
        "target_qps", "achieved_qps", "connections", "sent",
        "completed",  "degraded",     "shed",        "errors",
        "cancelled",  "failed",       "unanswered",  "elapsed_ms",
        "warmup_ms",  "warmup_excluded"};
    const auto latencyHeader =
        stats::LatencySummary::csvHeader("response_ms_");
    header.insert(header.end(), latencyHeader.begin(), latencyHeader.end());
    // The slowest over-target request's trace id (16-digit hex; all
    // zeros when none), joinable against /tracez output.
    header.push_back("trace_id");
    csv.writeRow(header);

    std::vector<std::string> row = {
        std::to_string(config.qps),
        std::to_string(result.achievedQps),
        std::to_string(config.connections),
        std::to_string(result.sent),
        std::to_string(result.completed),
        std::to_string(result.degraded),
        std::to_string(result.shed),
        std::to_string(result.errors),
        std::to_string(result.cancelled),
        std::to_string(result.failed),
        std::to_string(result.unanswered),
        std::to_string(result.elapsedMs),
        std::to_string(config.warmupMs),
        std::to_string(result.warmupExcluded)};
    const auto latencyRow = result.summary().toCsvRow();
    row.insert(row.end(), latencyRow.begin(), latencyRow.end());
    row.push_back(hexTraceId(result.worstOverTarget().traceId));
    csv.writeRow(row);
}

void
writeLoadGenTraceCsv(const LoadGenResult& result, const std::string& path)
{
    util::CsvWriter csv(path);
    csv.writeRow({"seq", "trace_id", "response_ms"});
    for (const OverTargetRequest& req : result.overTarget)
        csv.writeRow({std::to_string(req.seq), hexTraceId(req.traceId),
                      std::to_string(req.responseMs)});
}

} // namespace tpc::net
