#include "net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <thread>
#include <unistd.h>

#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"
#include "util/csv.h"
#include "util/distributions.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tpc::net {
namespace {

using Clock = std::chrono::steady_clock;

/** One persistent client connection. */
struct ClientConn
{
    FdGuard fd;
    FrameReader reader;
    std::vector<std::uint8_t> writeBuffer;
    std::size_t writeOffset = 0;
    bool wantWrite = false;
    bool alive = false;
};

double
msSince(Clock::time_point epoch)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - epoch)
        .count();
}

/** Connects all sockets, retrying until the timeout (the server may still
 *  be binding its port, e.g. in the CI smoke test). */
void
connectAll(const LoadGenConfig& config, std::vector<ClientConn>& conns)
{
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               config.connectTimeoutMs));
    for (ClientConn& conn : conns) {
        for (;;) {
            std::string error;
            const int fd = connectTcp(config.host, config.port, &error);
            if (fd >= 0) {
                // Wait for the non-blocking connect to resolve.
                Poller poller;
                poller.add(fd, kPollOut);
                std::vector<PollEvent> events;
                poller.wait(events, 250);
                if (!events.empty() && connectSucceeded(fd)) {
                    conn.fd.reset(fd);
                    conn.reader = FrameReader();
                    conn.alive = true;
                    break;
                }
                ::close(fd);
            }
            if (Clock::now() >= deadline)
                util::fatal("loadgen: cannot connect to " + config.host +
                            ":" + std::to_string(config.port) +
                            (error.empty() ? "" : (": " + error)));
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    }
}

void
flushConn(ClientConn& conn, Poller& poller, LoadGenResult& result)
{
    while (conn.writeOffset < conn.writeBuffer.size()) {
        std::size_t n = 0;
        const IoStatus status = writeSome(
            conn.fd.fd(), conn.writeBuffer.data() + conn.writeOffset,
            conn.writeBuffer.size() - conn.writeOffset, &n);
        if (status == IoStatus::kOk && n > 0) {
            conn.writeOffset += n;
            continue;
        }
        if (status == IoStatus::kWouldBlock || n == 0) {
            if (!conn.wantWrite) {
                conn.wantWrite = true;
                poller.modify(conn.fd.fd(), kPollIn | kPollOut);
            }
            return;
        }
        conn.alive = false;
        ++result.connectionsLost;
        poller.remove(conn.fd.fd());
        conn.fd.reset();
        return;
    }
    conn.writeBuffer.clear();
    conn.writeOffset = 0;
    if (conn.wantWrite) {
        conn.wantWrite = false;
        poller.modify(conn.fd.fd(), kPollIn);
    }
}

} // namespace

LoadGenResult
runLoadGen(const LoadGenConfig& config)
{
    TPC_CHECK(config.qps > 0.0);
    TPC_CHECK(config.connections >= 1);
    TPC_CHECK(config.payloadBytes >= 8);

    LoadGenResult result;
    std::vector<ClientConn> conns(
        static_cast<std::size_t>(config.connections));
    connectAll(config, conns);

    Poller poller;
    for (const ClientConn& conn : conns)
        poller.add(conn.fd.fd(), kPollIn);

    util::PoissonProcess arrivals(config.qps, util::Rng(config.seed));
    /** Scheduled arrival time (ms) of each unanswered request. */
    std::map<std::uint64_t, double> outstanding;

    const auto epoch = Clock::now();
    double nextArrivalMs = arrivals.nextArrivalMs();
    std::uint64_t seq = 0;
    bool sendingDone = false;
    double sendingDoneAtMs = 0.0;
    std::size_t nextConn = 0;
    std::vector<PollEvent> events;
    std::uint8_t readBuffer[16384];

    auto doneSending = [&](double nowMs) {
        if (config.numRequests > 0)
            return seq >= config.numRequests;
        return nowMs >= config.durationMs;
    };

    for (;;) {
        double nowMs = msSince(epoch);

        // An interrupt ends the arrival process, not the run: the drain
        // below still collects outstanding responses so the partial
        // latency record is complete for every request actually sent.
        if (!sendingDone && config.stopFlag != nullptr &&
            config.stopFlag->load(std::memory_order_relaxed)) {
            sendingDone = true;
            sendingDoneAtMs = nowMs;
        }

        // Open-loop send: emit every arrival whose time has come, without
        // ever waiting on a response. A backed-up connection buffers the
        // frame; the request is still timestamped at its scheduled
        // arrival, so server-side delay is measured, not masked.
        while (!sendingDone && nextArrivalMs <= nowMs) {
            std::size_t attempts = 0;
            while (!conns[nextConn].alive && attempts < conns.size()) {
                nextConn = (nextConn + 1) % conns.size();
                ++attempts;
            }
            if (attempts == conns.size() && !conns[nextConn].alive) {
                util::warn("loadgen: all connections lost; stopping early");
                sendingDone = true;
                sendingDoneAtMs = nowMs;
                break;
            }
            ClientConn& conn = conns[nextConn];
            nextConn = (nextConn + 1) % conns.size();

            Frame frame;
            frame.type = FrameType::kRequest;
            frame.cls = config.cls;
            frame.requestId = seq;
            appendU64(frame.payload, seq);
            if (frame.payload.size() < config.payloadBytes)
                frame.payload.resize(config.payloadBytes, 0);
            if (config.payloadFn)
                config.payloadFn(seq, frame.payload);
            encodeFrame(frame, conn.writeBuffer);
            flushConn(conn, poller, result);

            outstanding[seq] = nextArrivalMs;
            ++result.sent;
            ++seq;
            nextArrivalMs = arrivals.nextArrivalMs();
            if (doneSending(nowMs)) {
                sendingDone = true;
                sendingDoneAtMs = nowMs;
            }
        }
        if (!sendingDone && doneSending(nowMs)) {
            sendingDone = true;
            sendingDoneAtMs = nowMs;
        }

        if (sendingDone) {
            const bool anyAlive =
                std::any_of(conns.begin(), conns.end(),
                            [](const ClientConn& c) { return c.alive; });
            if (outstanding.empty() || !anyAlive ||
                nowMs - sendingDoneAtMs >= config.drainTimeoutMs)
                break;
        }

        // Sleep until the next arrival is due (capped so response reads
        // and the drain check stay responsive).
        int timeoutMs = 10;
        if (!sendingDone) {
            const double untilNext = nextArrivalMs - nowMs;
            timeoutMs = std::clamp(
                static_cast<int>(std::ceil(untilNext)), 0, 10);
        }
        poller.wait(events, timeoutMs);

        for (const PollEvent& ev : events) {
            auto connIt = std::find_if(conns.begin(), conns.end(),
                                       [&ev](const ClientConn& c) {
                                           return c.alive &&
                                                  c.fd.fd() == ev.fd;
                                       });
            if (connIt == conns.end())
                continue;
            ClientConn& conn = *connIt;
            if (ev.events & kPollErr) {
                conn.alive = false;
                ++result.connectionsLost;
                poller.remove(conn.fd.fd());
                conn.fd.reset();
                continue;
            }
            if (ev.events & kPollOut)
                flushConn(conn, poller, result);
            if (!conn.alive || !(ev.events & kPollIn))
                continue;

            for (;;) {
                std::size_t n = 0;
                const IoStatus status = readSome(conn.fd.fd(), readBuffer,
                                                 sizeof(readBuffer), &n);
                if (status == IoStatus::kOk) {
                    conn.reader.append(readBuffer, n);
                    continue;
                }
                if (status == IoStatus::kWouldBlock)
                    break;
                conn.alive = false;
                ++result.connectionsLost;
                poller.remove(conn.fd.fd());
                conn.fd.reset();
                break;
            }

            Frame response;
            while (conn.alive && conn.reader.next(&response)) {
                const auto it = outstanding.find(response.requestId);
                if (it == outstanding.end())
                    continue; // Duplicate or unknown id; ignore.
                const double responseMs = msSince(epoch) - it->second;
                outstanding.erase(it);
                switch (response.status) {
                case FrameStatus::kOk:
                    ++result.completed;
                    result.latency.add(responseMs);
                    break;
                case FrameStatus::kBusy:
                    ++result.shed;
                    break;
                case FrameStatus::kError:
                    ++result.errors;
                    break;
                }
            }
            if (conn.alive && conn.reader.broken()) {
                util::warn("loadgen: protocol error from server: " +
                           conn.reader.error());
                conn.alive = false;
                ++result.connectionsLost;
                poller.remove(conn.fd.fd());
                conn.fd.reset();
            }
        }
    }

    result.unanswered = outstanding.size();
    result.elapsedMs = msSince(epoch);
    result.achievedQps = result.elapsedMs > 0.0
                             ? result.sent / result.elapsedMs * 1000.0
                             : 0.0;
    return result;
}

void
writeLoadGenCsv(const LoadGenResult& result, const LoadGenConfig& config,
                const std::string& path)
{
    util::CsvWriter csv(path);
    std::vector<std::string> header = {
        "target_qps", "achieved_qps", "connections", "sent",
        "completed",  "shed",         "errors",      "unanswered",
        "elapsed_ms"};
    const auto latencyHeader =
        stats::LatencySummary::csvHeader("response_ms_");
    header.insert(header.end(), latencyHeader.begin(), latencyHeader.end());
    csv.writeRow(header);

    std::vector<std::string> row = {
        std::to_string(config.qps),
        std::to_string(result.achievedQps),
        std::to_string(config.connections),
        std::to_string(result.sent),
        std::to_string(result.completed),
        std::to_string(result.shed),
        std::to_string(result.errors),
        std::to_string(result.unanswered),
        std::to_string(result.elapsedMs)};
    const auto latencyRow = result.summary().toCsvRow();
    row.insert(row.end(), latencyRow.begin(), latencyRow.end());
    csv.writeRow(row);
}

} // namespace tpc::net
