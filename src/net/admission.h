/**
 * @file
 * Admission control for the RPC serving layer.
 *
 * An open-loop client keeps sending at its configured rate no matter how
 * far behind the server falls, so an overloaded ISN must shed load or its
 * queue — and the latency of every queued request — grows without bound.
 * The controller bounds two quantities: requests submitted-but-incomplete
 * (in-flight) and requests sitting in the dispatch queue (pending). A
 * request that would exceed either limit is rejected immediately with a
 * BUSY response, which keeps the tail of *accepted* requests flat under
 * overload (the property the ISSUE's overload test asserts).
 */
#pragma once

#include <atomic>
#include <cstdint>

namespace tpc::net {

/** Limits enforced by the AdmissionController. */
struct AdmissionLimits
{
    /** Max requests submitted but not yet completed (<= 0: unlimited). */
    int maxInFlight = 128;
    /** Max requests waiting in the dispatch queue (<= 0: unlimited). */
    int maxPending = 64;
};

/**
 * Thread-safe accept/shed decision with counters. tryAdmit() is called
 * with the server's current dispatch-queue depth; onComplete() must be
 * called exactly once per admitted request.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionLimits limits = {})
        : limits_(limits)
    {
    }

    /**
     * Admits the request unless a limit is exceeded. On admission the
     * in-flight count is already incremented when this returns.
     */
    bool tryAdmit(int queueDepth)
    {
        if (limits_.maxPending > 0 && queueDepth >= limits_.maxPending) {
            shed_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        int current = inFlight_.load(std::memory_order_relaxed);
        for (;;) {
            if (limits_.maxInFlight > 0 && current >= limits_.maxInFlight) {
                shed_.fetch_add(1, std::memory_order_relaxed);
                return false;
            }
            if (inFlight_.compare_exchange_weak(current, current + 1,
                                                std::memory_order_relaxed))
                break;
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    /** Releases one admitted request's in-flight slot. */
    void onComplete() { inFlight_.fetch_sub(1, std::memory_order_relaxed); }

    int inFlight() const
    {
        return inFlight_.load(std::memory_order_relaxed);
    }

    std::uint64_t accepted() const
    {
        return accepted_.load(std::memory_order_relaxed);
    }

    std::uint64_t shed() const
    {
        return shed_.load(std::memory_order_relaxed);
    }

    const AdmissionLimits& limits() const { return limits_; }

  private:
    AdmissionLimits limits_;
    std::atomic<int> inFlight_{0};
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> shed_{0};
};

} // namespace tpc::net
