/**
 * @file
 * Admission control for the RPC serving layer.
 *
 * An open-loop client keeps sending at its configured rate no matter how
 * far behind the server falls, so an overloaded ISN must shed load or its
 * queue — and the latency of every queued request — grows without bound.
 * The controller bounds two quantities: requests submitted-but-incomplete
 * (in-flight) and requests sitting in the dispatch queue (pending). A
 * request that would exceed either limit is rejected immediately with a
 * BUSY response, which keeps the tail of *accepted* requests flat under
 * overload (the property the ISSUE's overload test asserts).
 *
 * The implementation lives in src/overload: AdmissionController is the
 * tenant-aware weighted-fair controller. With no tenants configured in
 * AdmissionLimits it behaves exactly like the original single-bucket
 * controller; configure `tenants` to give each class a guaranteed share
 * of the in-flight capacity (surplus stays work-conserving).
 */
#pragma once

#include "overload/admission.h"

namespace tpc::net {

using overload::AdmissionLimits;
using overload::TenantAdmissionSnapshot;
using overload::TenantQuota;

using AdmissionController = overload::WeightedAdmissionController;

} // namespace tpc::net
