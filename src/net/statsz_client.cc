#include "net/statsz_client.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"

namespace tpc::net {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/** One request/response pull shared by /statsz and /tracez: same
 *  connection, framing, and deadline discipline — only the frame types
 *  differ. */
StatszResult
fetchAdminFrame(const std::string& host, std::uint16_t port,
                double timeoutMs, FrameType requestType,
                FrameType responseType, const char* noProviderHint,
                const std::string& payload = std::string())
{
    StatszResult result;
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(timeoutMs));
    auto fail = [&result, start](std::string why) {
        result.error = std::move(why);
        result.elapsedMs = msSince(start);
        return result;
    };
    // Remaining budget as a poll timeout; >= 1 so a wait near the
    // deadline still polls once instead of spinning.
    auto remainingMs = [&deadline] {
        const auto left = std::chrono::duration_cast<
                              std::chrono::milliseconds>(deadline -
                                                         Clock::now())
                              .count();
        return std::max(1, static_cast<int>(left));
    };

    std::string connectError;
    FdGuard fd(connectTcp(host, port, &connectError));
    if (!fd.valid())
        return fail("connect: " + connectError);
    Poller poller;
    poller.add(fd.fd(), kPollOut);
    std::vector<PollEvent> events;
    poller.wait(events, remainingMs());
    if (events.empty() || !connectSucceeded(fd.fd()))
        return fail("connect to " + host + ":" + std::to_string(port) +
                    " failed or timed out");

    Frame request;
    request.type = requestType;
    request.requestId = 1;
    request.payload.assign(payload.begin(), payload.end());
    std::vector<std::uint8_t> writeBuffer;
    encodeFrame(request, writeBuffer);
    std::size_t writeOffset = 0;
    while (writeOffset < writeBuffer.size()) {
        std::size_t n = 0;
        const IoStatus status =
            writeSome(fd.fd(), writeBuffer.data() + writeOffset,
                      writeBuffer.size() - writeOffset, &n);
        if (status == IoStatus::kOk && n > 0) {
            writeOffset += n;
            continue;
        }
        if (status != IoStatus::kWouldBlock && n == 0)
            return fail("send failed");
        if (Clock::now() >= deadline)
            return fail("deadline exceeded while sending");
        poller.wait(events, remainingMs());
    }

    poller.modify(fd.fd(), kPollIn);
    FrameReader reader;
    Frame frame;
    for (;;) {
        while (reader.next(&frame)) {
            if (frame.type != responseType ||
                frame.requestId != request.requestId)
                continue;
            if (frame.status != FrameStatus::kOk)
                return fail("server answered status " +
                            std::to_string(
                                static_cast<int>(frame.status)) +
                            " (" + noProviderHint + ")");
            result.ok = true;
            result.text.assign(frame.payload.begin(),
                               frame.payload.end());
            result.elapsedMs = msSince(start);
            return result;
        }
        if (reader.broken())
            return fail("protocol error: " + reader.error());
        if (Clock::now() >= deadline)
            return fail("deadline of " + std::to_string(timeoutMs) +
                        " ms exceeded waiting for the response");
        poller.wait(events, remainingMs());
        std::uint8_t buffer[16384];
        for (;;) {
            std::size_t n = 0;
            const IoStatus status =
                readSome(fd.fd(), buffer, sizeof(buffer), &n);
            if (status == IoStatus::kOk) {
                reader.append(buffer, n);
                continue;
            }
            if (status == IoStatus::kWouldBlock)
                break;
            return fail("connection closed before the response");
        }
    }
}

} // namespace

StatszResult
fetchStatsz(const std::string& host, std::uint16_t port, double timeoutMs)
{
    return fetchAdminFrame(host, port, timeoutMs,
                           FrameType::kStatsRequest,
                           FrameType::kStatsResponse,
                           "no statsz provider installed?");
}

StatszResult
fetchTracez(const std::string& host, std::uint16_t port, double timeoutMs)
{
    return fetchAdminFrame(host, port, timeoutMs,
                           FrameType::kTraceRequest,
                           FrameType::kTraceResponse,
                           "no tracez provider installed?");
}

StatszResult
fetchProfilez(const std::string& host, std::uint16_t port,
              const std::string& command, double timeoutMs)
{
    return fetchAdminFrame(host, port, timeoutMs,
                           FrameType::kProfileRequest,
                           FrameType::kProfileResponse,
                           "no profilez provider installed?", command);
}

} // namespace tpc::net
