/**
 * @file
 * Versioned, atomically hot-swappable target table.
 *
 * The closed-loop adapter (src/adapt) republishes the table while the
 * serving hot path reads it on every dispatch, so the swap is RCU-style:
 * readers hold an immutable `shared_ptr<const TargetTable>` snapshot and
 * only pay a relaxed-ish atomic version load per dispatch; the pointer
 * itself is re-fetched (under a short mutex) only when the version moved.
 *
 * Memory-ordering contract: publish() stores the new snapshot under the
 * mutex *before* incrementing `version_` with release; readers load
 * `version_` with acquire and, on change, take the mutex to copy the
 * shared_ptr. The acquire/release pair on the version counter therefore
 * guarantees a reader that observed version v sees the table published
 * with v (the mutex alone would too — the counter exists so the hot path
 * can skip the mutex entirely on the overwhelmingly common no-change
 * case).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/target_table.h"

namespace tpc::core {

/** Provenance of the active table. */
enum class TableSource : int
{
    kOffline = 0, ///< Built offline (Algorithm 1) or loaded from a file.
    kAdapted = 1, ///< Promoted online by the AdaptiveTableController.
};

/** Human-readable source label for /statsz and CSVs. */
const char* tableSourceName(TableSource source);

/** One published table snapshot. */
struct TableSnapshot
{
    std::shared_ptr<const TargetTable> table;
    std::uint64_t version = 0;
    TableSource source = TableSource::kOffline;
};

/**
 * Holder of the currently-active table. Any number of reader threads
 * (policies, the fan-out aggregator) and one writer (the adapter) may
 * use it concurrently.
 */
class VersionedTargetTable
{
  public:
    /** Starts at version 1 with the given offline table. */
    explicit VersionedTargetTable(TargetTable initial);

    /** Current version; monotonically increasing from 1. */
    std::uint64_t version() const
    {
        return version_.load(std::memory_order_acquire);
    }

    /** Copies the current snapshot (table pointer, version, source). */
    TableSnapshot snapshot() const;

    /**
     * Publishes a new active table, bumping the version. Returns the new
     * version. Never blocks readers for longer than a shared_ptr copy.
     */
    std::uint64_t publish(TargetTable table, TableSource source);

  private:
    mutable std::mutex mutex_;
    std::shared_ptr<const TargetTable> table_;
    TableSource source_ = TableSource::kOffline;
    std::atomic<std::uint64_t> version_;
};

} // namespace tpc::core
