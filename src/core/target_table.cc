#include "core/target_table.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include "util/logging.h"

namespace tpc::core {

TargetTable::TargetTable(std::vector<TargetEntry> entries)
    : entries_(std::move(entries))
{
    TPC_CHECK(!entries_.empty());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        TPC_CHECK(entries_[i].targetMs > 0.0);
        if (i > 0)
            TPC_CHECK_MSG(entries_[i].load > entries_[i - 1].load,
                          "loads must be strictly ascending");
    }
}

double
TargetTable::targetFor(double load) const
{
    return entries_[bucketIndexFor(load)].targetMs;
}

std::size_t
TargetTable::bucketIndexFor(double load) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (load <= entries_[i].load)
            return i;
    }
    // Beyond the last built bucket (possible when the table was built
    // with a finite top bound and production load exceeds it): clamp to
    // the nearest bucket instead of extrapolating.
    return entries_.size() - 1;
}

double
TargetTable::targetAt(std::size_t index) const
{
    TPC_CHECK(index < entries_.size());
    return entries_[index].targetMs;
}

TargetTable
TargetTable::withBumpedTarget(std::size_t index, double deltaMs) const
{
    TPC_CHECK(index < entries_.size());
    std::vector<TargetEntry> entries = entries_;
    entries[index].targetMs += deltaMs;
    return TargetTable(std::move(entries));
}

std::string
TargetTable::toString() const
{
    std::string out;
    char buf[64];
    for (const auto& entry : entries_) {
        if (!out.empty())
            out += ", ";
        if (std::isinf(entry.load))
            std::snprintf(buf, sizeof(buf), "load<=inf:%.0fms",
                          entry.targetMs);
        else
            std::snprintf(buf, sizeof(buf), "load<=%.0f:%.0fms", entry.load,
                          entry.targetMs);
        out += buf;
    }
    return out;
}

std::string
TargetTable::saveText() const
{
    std::string out = "# tpc target table v1\n";
    char buf[64];
    for (const auto& entry : entries_) {
        if (std::isinf(entry.load))
            std::snprintf(buf, sizeof(buf), "inf %.17g\n", entry.targetMs);
        else
            std::snprintf(buf, sizeof(buf), "%.17g %.17g\n", entry.load,
                          entry.targetMs);
        out += buf;
    }
    return out;
}

TargetTable
TargetTable::parseText(const std::string& text)
{
    std::vector<TargetEntry> entries;
    std::size_t cursor = 0;
    while (cursor < text.size()) {
        std::size_t end = text.find('\n', cursor);
        if (end == std::string::npos)
            end = text.size();
        const std::string line = text.substr(cursor, end - cursor);
        cursor = end + 1;
        if (line.empty() || line[0] == '#')
            continue;
        TargetEntry entry{};
        char loadToken[64];
        if (std::sscanf(line.c_str(), "%63s %lg", loadToken,
                        &entry.targetMs) != 2)
            util::fatal("bad target-table line: " + line);
        entry.load = (std::string(loadToken) == "inf")
                         ? std::numeric_limits<double>::infinity()
                         : std::strtod(loadToken, nullptr);
        entries.push_back(entry);
    }
    if (entries.empty())
        util::fatal("target-table text has no entries");
    return TargetTable(std::move(entries));
}

void
TargetTable::saveToFile(const std::string& path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        util::fatal("cannot open target-table file for writing: " + path);
    out << saveText();
    if (!out)
        util::fatal("failed writing target-table file: " + path);
}

TargetTable
TargetTable::loadFromFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot open target-table file: " + path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return parseText(text);
}

TargetTable
TargetTable::webSearchDefault()
{
    // Load metric: active threads of long queries (LongT). The unloaded
    // floor is the longest query at full parallelism (~300 ms / 4.1 ~ 73 ms
    // for the demand cap, ~50 ms for the P99 demand); targets grow with
    // load as spare capacity disappears.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    return TargetTable({
        {0.0, 40.0},
        {2.0, 44.0},
        {4.0, 50.0},
        {6.0, 58.0},
        {8.0, 70.0},
        {12.0, 90.0},
        {16.0, 115.0},
        {20.0, 145.0},
        {kInf, 190.0},
    });
}

TargetTable
TargetTable::financeDefault()
{
    // Finance demands are bimodal (~15 ms / ~135 ms); the unloaded floor
    // sits just above a long request at degree 4 (135 / 3.7 ~ 36.5 ms),
    // so accurately-estimated requests always finish inside the target
    // and dynamic correction never fires (Section 5.1).
    constexpr double kInf = std::numeric_limits<double>::infinity();
    // The table stays below the degree-3 completion time (135 / 2.85 ~
    // 47 ms) until the box is nearly saturated, so long requests keep
    // degree 4 across the evaluated load range — matching the paper's
    // observation that at 200 RPS TPC runs long requests with degree 4.
    return TargetTable({
        {0.0, 38.0},
        {4.0, 40.0},
        {8.0, 44.0},
        {12.0, 60.0},
        {kInf, 95.0},
    });
}

TargetTable
TargetTable::initialForBuilder(const std::vector<double>& loads,
                               double unloadedTargetMs)
{
    TPC_CHECK(!loads.empty());
    TPC_CHECK(unloadedTargetMs > 0.0);
    std::vector<TargetEntry> entries;
    entries.reserve(loads.size());
    for (double load : loads)
        entries.push_back({load, unloadedTargetMs});
    return TargetTable(std::move(entries));
}

} // namespace tpc::core
