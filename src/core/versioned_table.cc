#include "core/versioned_table.h"

namespace tpc::core {

const char*
tableSourceName(TableSource source)
{
    switch (source) {
    case TableSource::kOffline:
        return "offline";
    case TableSource::kAdapted:
        return "adapted";
    }
    return "unknown";
}

VersionedTargetTable::VersionedTargetTable(TargetTable initial)
    : table_(std::make_shared<const TargetTable>(std::move(initial))),
      version_(1)
{
}

TableSnapshot
VersionedTargetTable::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {table_, version_.load(std::memory_order_relaxed), source_};
}

std::uint64_t
VersionedTargetTable::publish(TargetTable table, TableSource source)
{
    auto next = std::make_shared<const TargetTable>(std::move(table));
    std::lock_guard<std::mutex> lock(mutex_);
    table_ = std::move(next);
    source_ = source;
    // Release pairs with the readers' acquire load in version(): a reader
    // that sees the new version and re-snapshots is guaranteed to observe
    // this publish (the mutex orders the snapshot copy itself).
    const std::uint64_t v =
        version_.load(std::memory_order_relaxed) + 1;
    version_.store(v, std::memory_order_release);
    return v;
}

} // namespace tpc::core
