/**
 * @file
 * Offline target-table construction: Algorithm 1 (BuildTargetTable).
 *
 * A greedy gradient-descent search over target values: starting from an
 * aggressive initial table, repeatedly try raising each load entry's
 * target by one step, keep the single bump that lowers the measured tail
 * latency most, and stop when no bump helps. MEASURETAIL is pluggable —
 * production would run a live experiment; the library runs the
 * discrete-event server across a set of load points and returns a
 * weighted sum of tail latencies (see harness::makeMeasureTail).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/target_table.h"

namespace tpc::core {

/**
 * Experimental procedure that runs a predefined experiment covering the
 * production load range under the candidate table and returns a weighted
 * tail-latency score (lower is better).
 */
using MeasureTailFn = std::function<double(const TargetTable&)>;

/** Controls for the builder. */
struct TableBuilderParams
{
    /** Search step size delta in ms (1 ms in the paper). */
    double stepMs = 1.0;
    /** Safety bound on iterations of the outer while loop. */
    int maxIterations = 1000;
    /** Upper bound on any target (E_max, a few hundred ms for search). */
    double maxTargetMs = 400.0;
};

/** Progress/diagnostic record of one builder run. */
struct TableBuilderReport
{
    int iterations = 0;
    int measureTailCalls = 0;
    double initialScore = 0.0;
    double finalScore = 0.0;
};

/**
 * Runs Algorithm 1: greedy gradient descent from @p initialTable.
 *
 * @param initialTable Starting table (typically the unloaded-minimum).
 * @param measureTail  The MEASURETAIL experimental procedure.
 * @param params       Step size and bounds.
 * @param report       Optional out-param with search statistics.
 * @return The final target table.
 */
TargetTable buildTargetTable(const TargetTable& initialTable,
                             const MeasureTailFn& measureTail,
                             const TableBuilderParams& params = {},
                             TableBuilderReport* report = nullptr);

} // namespace tpc::core
