/**
 * @file
 * Offline target-table construction: Algorithm 1 (BuildTargetTable).
 *
 * A greedy gradient-descent search over target values: starting from an
 * aggressive initial table, repeatedly try raising each load entry's
 * target by one step, keep the single bump that lowers the measured tail
 * latency most, and stop when no bump helps. MEASURETAIL is pluggable —
 * production would run a live experiment; the library runs the
 * discrete-event server across a set of load points and returns a
 * weighted sum of tail latencies (see harness::makeMeasureTail).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/target_table.h"
#include "policy/speedup_profile.h"
#include "stats/histogram.h"

namespace tpc::core {

/**
 * Experimental procedure that runs a predefined experiment covering the
 * production load range under the candidate table and returns a weighted
 * tail-latency score (lower is better).
 */
using MeasureTailFn = std::function<double(const TargetTable&)>;

/** Controls for the builder. */
struct TableBuilderParams
{
    /** Search step size delta in ms (1 ms in the paper). */
    double stepMs = 1.0;
    /** Safety bound on iterations of the outer while loop. */
    int maxIterations = 1000;
    /** Upper bound on any target (E_max, a few hundred ms for search). */
    double maxTargetMs = 400.0;
};

/** Progress/diagnostic record of one builder run. */
struct TableBuilderReport
{
    int iterations = 0;
    int measureTailCalls = 0;
    double initialScore = 0.0;
    double finalScore = 0.0;
};

/**
 * Runs Algorithm 1: greedy gradient descent from @p initialTable.
 *
 * @param initialTable Starting table (typically the unloaded-minimum).
 * @param measureTail  The MEASURETAIL experimental procedure.
 * @param params       Step size and bounds.
 * @param report       Optional out-param with search statistics.
 * @return The final target table.
 */
TargetTable buildTargetTable(const TargetTable& initialTable,
                             const MeasureTailFn& measureTail,
                             const TableBuilderParams& params = {},
                             TableBuilderReport* report = nullptr);

/**
 * Observed demand for one load bucket of one observation window: the
 * distribution of *sequential* service-time demand (ms) of requests
 * dispatched while the load metric sat in this bucket. The adapt layer
 * reconstructs demand from measured service time x the speedup of the
 * degree the request actually ran at.
 */
struct LoadWindowObservation
{
    /** Representative load-metric value (the bucket's upper bound). */
    double load = 0.0;
    /** Sequential-demand histogram; its count() is the bucket's weight. */
    stats::LogHistogram demandMs;
};

/** Controls for the analytic (histogram-driven) MEASURETAIL. */
struct HistogramRefitOptions
{
    /** Degree cap, matching TpcOptions::maxDegree. */
    int maxDegree = 6;
    /** Worker threads available to the server (capacity model input). */
    int totalWorkers = 28;
    /** Wall time (ms) the observation window spans. */
    double windowMs = 1000.0;
    /** Primary tail quantile the score tracks (the paper optimizes p99). */
    double tailQuantile = 0.99;
    /** Secondary, deeper quantile blended into the score. */
    double highQuantile = 0.999;
    /** Weight of the deeper quantile in the score. */
    double highWeight = 0.5;
    /** Utilization clamp for the queueing-inflation term (< 1). */
    double maxUtilization = 0.98;
    /** Floor for any target produced by a re-fit. */
    double minTargetMs = 1.0;
};

/**
 * Analytic MEASURETAIL: estimates the tail latency a candidate table
 * would produce over the observed windows, without running anything.
 * Per demand-histogram bucket it picks the degree TPC would pick under
 * the candidate's target, estimates the parallel execution time from the
 * speedup model, and inflates the resulting tail quantiles by a
 * utilization term (planned thread-milliseconds vs. worker capacity) so
 * over-parallelizing under load is penalized exactly as Algorithm 1's
 * live experiment would observe. Returns 0 when the windows hold no
 * samples (every candidate ties; the builder keeps the initial table).
 */
double scoreTableOnWindows(const TargetTable& table,
                           const std::vector<LoadWindowObservation>& windows,
                           const policy::SpeedupModel& model,
                           const HistogramRefitOptions& options);

/** Wraps scoreTableOnWindows as a MeasureTailFn for buildTargetTable. */
MeasureTailFn
makeHistogramMeasureTail(std::vector<LoadWindowObservation> windows,
                         const policy::SpeedupModel& model,
                         const HistogramRefitOptions& options);

/**
 * Re-fits a candidate table from windowed observations: seeds the
 * builder with the unloaded-minimum initial table over @p loads (the
 * serving table's bucket bounds) and runs Algorithm 1 against the
 * analytic MEASURETAIL above. Degenerate inputs degrade gracefully: an
 * empty observation set returns nullopt (nothing to fit), a single load
 * bucket produces a single-row table, and demand that no target can
 * absorb still yields a usable (clamped) table — never a divide by zero.
 */
std::optional<TargetTable>
refitTargetTable(const std::vector<LoadWindowObservation>& windows,
                 const std::vector<double>& loads,
                 const policy::SpeedupModel& model,
                 const HistogramRefitOptions& refitOptions,
                 const TableBuilderParams& builderParams,
                 TableBuilderReport* report = nullptr);

} // namespace tpc::core
