/**
 * @file
 * The TPC parallelism policy: predictive parallelism + dynamic correction
 * driven by a load-dependent target completion time (Section 3).
 *
 * At dispatch, TPC reads the target E for the current load from the
 * target table, then picks the *smallest* degree whose estimated parallel
 * time (predicted sequential time / class speedup) meets E — short
 * requests run sequentially, long requests get just enough threads.
 * If the request is still running when E elapses (a mispredicted-long
 * request), dynamic correction raises its degree using the idle workers,
 * up to the maximum degree.
 *
 * Disabling correction yields the paper's "TP" ablation (Section 4.3).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/target_table.h"
#include "core/versioned_table.h"
#include "policy/load_metric.h"
#include "policy/policy.h"
#include "policy/speedup_profile.h"

namespace tpc::core {

/** Configuration of the TPC policy. */
struct TpcOptions
{
    /** Maximum parallelism degree (6 for web search, 4 for finance). */
    int maxDegree = 6;
    /** Enable dynamic correction; false gives the TP ablation. */
    bool enableCorrection = true;
    /** Load metric for the target-table lookup (LongT in the paper). */
    policy::LoadMetric loadMetric = policy::LoadMetric::LongThreads;
    /**
     * After a correction fires, re-check at this interval to grab newly
     * idle workers if the request is still below maxDegree. 0 re-uses the
     * current target E as the interval.
     */
    double correctionRecheckMs = 0.0;
    /**
     * When the first correction check fires, as a multiple of the target
     * E. 1.0 is TPC's design point ("the requests taking longer than the
     * target are likely to impact the tail"); smaller values correct
     * eagerly (wasting resources on requests that would have met the
     * target anyway), larger values correct late (the request has already
     * damaged the tail). Exposed for the ablation bench.
     */
    double correctionTriggerFactor = 1.0;
};

/** Telemetry counters exposed for experiments and tests. */
struct TpcCounters
{
    std::uint64_t dispatches = 0;
    std::uint64_t corrections = 0;
    std::uint64_t correctionThreadsAdded = 0;
};

/** TPC: Target-driven parallelism combining Prediction and Correction. */
class TpcPolicy final : public policy::ParallelismPolicy
{
  public:
    /**
     * @param speedupModel Per-class parallelism-efficiency profiles
     *                     (indexed by *predicted* time at decision time).
     * @param targetTable  Load -> target completion time E.
     * @param options      Degree cap, correction switch, load metric.
     */
    TpcPolicy(const policy::SpeedupModel& speedupModel,
              TargetTable targetTable, const TpcOptions& options = {});

    std::string name() const override
    {
        return options_.enableCorrection ? "TPC" : "TP";
    }

    policy::Decision onDispatch(const policy::RequestView& request,
                                const policy::SystemState& state) override;

    policy::Decision onRecheck(const policy::RequestView& request,
                               const policy::SystemState& state) override;

    void setRationaleEnabled(bool enabled) override
    {
        rationaleEnabled_ = enabled;
    }

    const policy::DecisionRationale* lastRationale() const override
    {
        return rationaleEnabled_ ? &rationale_ : nullptr;
    }

    policy::PolicySnapshot introspect() const override
    {
        policy::PolicySnapshot snapshot;
        snapshot.name = name();
        snapshot.hasTargetTable = true;
        const TargetTable& table = activeTable();
        snapshot.targetTable.reserve(table.size());
        for (const TargetEntry& entry : table.entries())
            snapshot.targetTable.emplace_back(entry.load, entry.targetMs);
        if (live_) {
            snapshot.tableVersion = cachedVersion_;
            snapshot.tableSource = tableSourceName(cachedSource_);
        }
        snapshot.dispatches = counters_.dispatches;
        snapshot.corrections = counters_.corrections;
        snapshot.correctionThreadsAdded = counters_.correctionThreadsAdded;
        return snapshot;
    }

    const TpcCounters& counters() const { return counters_; }
    const TargetTable& targetTable() const { return activeTable(); }
    const TpcOptions& options() const { return options_; }

    /** Replaces the target table (periodic recomputation, Section 3.3). */
    void setTargetTable(TargetTable table)
    {
        targetTable_ = std::move(table);
    }

    /**
     * Attaches a live, versioned table; subsequent decisions consume its
     * current snapshot instead of the constructor table. The hot path
     * pays one acquire load of the version counter per decision and only
     * re-snapshots (short mutex, shared_ptr copy) when the adapter
     * published a new version. Pass nullptr to detach. Must be called
     * from the thread that owns policy interactions (servers make policy
     * calls under their scheduler lock).
     */
    void attachLiveTable(const VersionedTargetTable* live)
    {
        live_ = live;
        cachedTable_ = nullptr;
        cachedVersion_ = 0;
        if (live_)
            refreshLiveTable();
    }

  private:
    /** Re-snapshots the live table if its version moved. */
    void refreshLiveTable()
    {
        if (live_->version() != cachedVersion_) {
            TableSnapshot snap = live_->snapshot();
            cachedTable_ = std::move(snap.table);
            cachedVersion_ = snap.version;
            cachedSource_ = snap.source;
        }
    }

    const TargetTable& activeTable() const
    {
        return cachedTable_ ? *cachedTable_ : targetTable_;
    }

    const policy::SpeedupModel& speedupModel_;
    TargetTable targetTable_;
    TpcOptions options_;
    TpcCounters counters_;
    bool rationaleEnabled_ = false;
    policy::DecisionRationale rationale_;

    /** Live-table consumption state (null when detached). */
    const VersionedTargetTable* live_ = nullptr;
    std::shared_ptr<const TargetTable> cachedTable_;
    std::uint64_t cachedVersion_ = 0;
    TableSource cachedSource_ = TableSource::kOffline;
};

} // namespace tpc::core
