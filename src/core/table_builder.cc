#include "core/table_builder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace tpc::core {

TargetTable
buildTargetTable(const TargetTable& initialTable,
                 const MeasureTailFn& measureTail,
                 const TableBuilderParams& params, TableBuilderReport* report)
{
    TPC_CHECK(measureTail != nullptr);
    TPC_CHECK(params.stepMs > 0.0);

    TargetTable table = initialTable;
    const std::size_t m = table.size();
    double curLatency = measureTail(table);
    int calls = 1;
    int iterations = 0;
    const double initialScore = curLatency;

    while (iterations < params.maxIterations) {
        ++iterations;
        // Try raising each entry's target by one step; keep the best bump.
        double bestLatency = std::numeric_limits<double>::max();
        std::size_t bestIndex = m;
        for (std::size_t i = 0; i < m; ++i) {
            if (table.entries()[i].targetMs + params.stepMs >
                params.maxTargetMs)
                continue;
            const TargetTable candidate =
                table.withBumpedTarget(i, params.stepMs);
            const double latency = measureTail(candidate);
            ++calls;
            if (latency < bestLatency) {
                bestLatency = latency;
                bestIndex = i;
            }
        }
        if (bestIndex < m && bestLatency < curLatency) {
            table = table.withBumpedTarget(bestIndex, params.stepMs);
            curLatency = bestLatency;
        } else {
            break; // No bump improves: the current table is final.
        }
    }

    if (report) {
        report->iterations = iterations;
        report->measureTailCalls = calls;
        report->initialScore = initialScore;
        report->finalScore = curLatency;
    }
    return table;
}

namespace {

/** Degree TPC would choose for demand @p s under target @p targetMs. */
int
degreeUnderTarget(const policy::SpeedupModel& model, double s,
                  double targetMs, int maxDegree)
{
    const policy::SpeedupProfile& profile = model.profileFor(s);
    int degree = profile.smallestDegreeToMeet(s, targetMs);
    if (degree == 0)
        degree = std::min(maxDegree, profile.maxDegree());
    return std::min(degree, maxDegree);
}

/** Weighted quantiles over (value, count) pairs; qs ascending. */
std::vector<double>
weightedQuantiles(std::vector<std::pair<double, std::uint64_t>>& samples,
                  const std::vector<double>& qs, std::uint64_t total)
{
    std::vector<double> out(qs.size(), 0.0);
    if (total == 0 || samples.empty())
        return out;
    std::sort(samples.begin(), samples.end());
    std::size_t qi = 0;
    std::uint64_t cum = 0;
    for (const auto& [value, count] : samples) {
        cum += count;
        while (qi < qs.size() &&
               static_cast<double>(cum) >=
                   qs[qi] * static_cast<double>(total)) {
            out[qi] = value;
            ++qi;
        }
        if (qi == qs.size())
            break;
    }
    for (; qi < qs.size(); ++qi)
        out[qi] = samples.back().first;
    return out;
}

} // namespace

double
scoreTableOnWindows(const TargetTable& table,
                    const std::vector<LoadWindowObservation>& windows,
                    const policy::SpeedupModel& model,
                    const HistogramRefitOptions& options)
{
    // Planned completion times and thread-milliseconds under the
    // candidate, per demand bucket of every load window.
    std::vector<std::pair<double, std::uint64_t>> completions;
    std::uint64_t total = 0;
    double threadMs = 0.0;
    for (const LoadWindowObservation& window : windows) {
        if (window.demandMs.count() == 0)
            continue;
        const double target = table.targetFor(window.load);
        for (std::size_t i = 0; i < window.demandMs.bucketCount(); ++i) {
            const std::uint64_t n = window.demandMs.bucketValue(i);
            if (n == 0)
                continue;
            const double s = window.demandMs.bucketUpperBound(i);
            const int degree =
                degreeUnderTarget(model, s, target, options.maxDegree);
            const double exec =
                model.profileFor(s).parallelTimeMs(s, degree);
            completions.emplace_back(exec, n);
            threadMs += static_cast<double>(n) * degree * exec;
            total += n;
        }
    }
    if (total == 0)
        return 0.0; // Nothing observed: every candidate ties.

    // Queueing-inflation term: the more thread-time the plan demands of
    // the window's worker capacity, the more each completion is delayed
    // behind others. This is what makes aggressive (low-target,
    // high-degree) tables lose under load and win when idle.
    const double capacity = std::max(options.windowMs, 1e-6) *
                            std::max(options.totalWorkers, 1);
    const double rho = threadMs / capacity;
    double inflation;
    if (rho < options.maxUtilization) {
        inflation = 1.0 / (1.0 - rho);
    } else {
        // Past the knee the M/M/1-style term explodes; keep the score
        // finite but *strictly increasing* in overload, so two saturated
        // plans still rank by the thread-time they demand (a flat clamp
        // here would make every overloaded table tie, and the shadow
        // scorer could never prefer the plan that sheds parallelism).
        const double atKnee = 1.0 / (1.0 - options.maxUtilization);
        inflation =
            atKnee * (1.0 + atKnee * (rho - options.maxUtilization));
    }

    std::vector<double> qs{options.tailQuantile, options.highQuantile};
    std::sort(qs.begin(), qs.end());
    const std::vector<double> tails =
        weightedQuantiles(completions, qs, total);
    return inflation * (tails[0] + options.highWeight * tails[1]);
}

MeasureTailFn
makeHistogramMeasureTail(std::vector<LoadWindowObservation> windows,
                         const policy::SpeedupModel& model,
                         const HistogramRefitOptions& options)
{
    return [windows = std::move(windows), &model,
            options](const TargetTable& table) {
        return scoreTableOnWindows(table, windows, model, options);
    };
}

std::optional<TargetTable>
refitTargetTable(const std::vector<LoadWindowObservation>& windows,
                 const std::vector<double>& loads,
                 const policy::SpeedupModel& model,
                 const HistogramRefitOptions& refitOptions,
                 const TableBuilderParams& builderParams,
                 TableBuilderReport* report)
{
    TPC_CHECK(!loads.empty());
    stats::LogHistogram merged;
    for (const LoadWindowObservation& window : windows)
        merged.merge(window.demandMs);
    if (merged.count() == 0)
        return std::nullopt; // Empty sample window: nothing to fit.

    // Unloaded-minimum initial table (Section 3.3): the tail demand at
    // full parallelism. The builder only raises targets from here.
    const double tailDemand = merged.percentile(refitOptions.tailQuantile);
    const policy::SpeedupProfile& profile = model.profileFor(tailDemand);
    const int maxDegree =
        std::min(refitOptions.maxDegree, profile.maxDegree());
    double unloaded = profile.parallelTimeMs(tailDemand, maxDegree);
    unloaded = std::clamp(unloaded, refitOptions.minTargetMs,
                          builderParams.maxTargetMs);
    const TargetTable initial =
        TargetTable::initialForBuilder(loads, unloaded);

    return buildTargetTable(
        initial, makeHistogramMeasureTail(windows, model, refitOptions),
        builderParams, report);
}

} // namespace tpc::core
