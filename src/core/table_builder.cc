#include "core/table_builder.h"

#include <limits>

#include "util/logging.h"

namespace tpc::core {

TargetTable
buildTargetTable(const TargetTable& initialTable,
                 const MeasureTailFn& measureTail,
                 const TableBuilderParams& params, TableBuilderReport* report)
{
    TPC_CHECK(measureTail != nullptr);
    TPC_CHECK(params.stepMs > 0.0);

    TargetTable table = initialTable;
    const std::size_t m = table.size();
    double curLatency = measureTail(table);
    int calls = 1;
    int iterations = 0;
    const double initialScore = curLatency;

    while (iterations < params.maxIterations) {
        ++iterations;
        // Try raising each entry's target by one step; keep the best bump.
        double bestLatency = std::numeric_limits<double>::max();
        std::size_t bestIndex = m;
        for (std::size_t i = 0; i < m; ++i) {
            if (table.entries()[i].targetMs + params.stepMs >
                params.maxTargetMs)
                continue;
            const TargetTable candidate =
                table.withBumpedTarget(i, params.stepMs);
            const double latency = measureTail(candidate);
            ++calls;
            if (latency < bestLatency) {
                bestLatency = latency;
                bestIndex = i;
            }
        }
        if (bestIndex < m && bestLatency < curLatency) {
            table = table.withBumpedTarget(bestIndex, params.stepMs);
            curLatency = bestLatency;
        } else {
            break; // No bump improves: the current table is final.
        }
    }

    if (report) {
        report->iterations = iterations;
        report->measureTailCalls = calls;
        report->initialScore = initialScore;
        report->finalScore = curLatency;
    }
    return table;
}

} // namespace tpc::core
