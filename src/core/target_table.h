/**
 * @file
 * The target table: mapping from instantaneous system load to the target
 * completion time E (Section 3.3).
 *
 * TPC allocates the fewest resources that complete each request within E,
 * and treats requests still running at E as tail threats eligible for
 * dynamic correction. Higher load maps to a larger E because fewer spare
 * resources are available for parallelization.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tpc::core {

/** One (load, target) pair. */
struct TargetEntry
{
    /** Upper bound of the load bucket (inclusive); the last entry should
     *  be infinity to cover all loads. */
    double load;
    /** Target completion time E in milliseconds. */
    double targetMs;
};

/**
 * Sorted list of (load, target) entries; lookup returns the target of the
 * first bucket whose load bound is >= the observed load.
 */
class TargetTable
{
  public:
    /** @param entries Ascending by load; at least one entry. */
    explicit TargetTable(std::vector<TargetEntry> entries);

    /** Target completion time E for the observed load. */
    double targetFor(double load) const;

    /**
     * Index of the bucket that serves the observed load, clamped to the
     * nearest built bucket: loads beyond the last (finite) bound map to
     * the last entry, loads below the first bound (including negative
     * readings from a misconfigured metric) map to the first. The adapt
     * layer keys its per-load observation windows on this index, so it
     * must never extrapolate past the table edge.
     */
    std::size_t bucketIndexFor(double load) const;

    /** Target of entry @p index (bounds-checked). */
    double targetAt(std::size_t index) const;

    std::size_t size() const { return entries_.size(); }
    const std::vector<TargetEntry>& entries() const { return entries_; }

    /** Returns a copy with entry @p index's target raised by @p deltaMs. */
    TargetTable withBumpedTarget(std::size_t index, double deltaMs) const;

    /** Compact rendering "load<=X:Ems, ..." for logs and docs. */
    std::string toString() const;

    /**
     * Serializes to a line-oriented text format ("load target" per line,
     * "inf" for the open-ended bucket). Round-trips through parseText.
     * This is the artifact a deployment distributes to its ISNs after the
     * periodic offline recomputation (Section 3.3).
     */
    std::string saveText() const;

    /** Parses a table produced by saveText. Fatal on malformed input. */
    static TargetTable parseText(const std::string& text);

    /** Writes saveText() to a file (fatal on I/O error). */
    void saveToFile(const std::string& path) const;

    /** Reads a table saved with saveToFile (fatal on I/O error). */
    static TargetTable loadFromFile(const std::string& path);

    /**
     * Default table for the web-search server, keyed on the LongT metric
     * (active threads of long queries). Computed offline with the
     * Algorithm 1 builder at reduced scale (examples/build_target_table)
     * and checked in, exactly as production would periodically recompute
     * and distribute it.
     */
    static TargetTable webSearchDefault();

    /** Default table for the finance server (Section 5). */
    static TargetTable financeDefault();

    /**
     * An intentionally aggressive initial table for the builder: every
     * load maps to the latency of an unloaded, fully parallelized system
     * (the smallest target ever achievable), as Section 3.3 prescribes.
     */
    static TargetTable initialForBuilder(const std::vector<double>& loads,
                                         double unloadedTargetMs);

  private:
    std::vector<TargetEntry> entries_;
};

} // namespace tpc::core
