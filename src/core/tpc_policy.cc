#include "core/tpc_policy.h"

#include <algorithm>

#include "util/logging.h"

namespace tpc::core {

TpcPolicy::TpcPolicy(const policy::SpeedupModel& speedupModel,
                     TargetTable targetTable, const TpcOptions& options)
    : speedupModel_(speedupModel),
      targetTable_(std::move(targetTable)),
      options_(options)
{
    TPC_CHECK(options.maxDegree >= 1);
}

policy::Decision
TpcPolicy::onDispatch(const policy::RequestView& request,
                      const policy::SystemState& state)
{
    ++counters_.dispatches;
    if (live_)
        refreshLiveTable();

    // 1. Target completion time for the current load.
    const double load = policy::loadMetricValue(options_.loadMetric, state);
    const double target = activeTable().targetFor(load);

    // 2. Predictive parallelism: smallest degree meeting the target under
    //    the predicted time's class profile. Extra threads beyond that
    //    would finish the request earlier than E without helping the tail,
    //    while taking resources other requests need to meet E.
    const policy::SpeedupProfile& profile =
        speedupModel_.profileFor(request.predictedMs);
    int degree = profile.smallestDegreeToMeet(request.predictedMs, target);
    if (degree == 0) {
        // Even full parallelism cannot meet E: this request will define
        // the tail, so give it the maximum useful degree.
        degree = std::min(options_.maxDegree, profile.maxDegree());
    }
    degree = std::min(degree, options_.maxDegree);

    // 3. Arm dynamic correction at the target: if the request is still
    //    running at E it was under-estimated and threatens the tail.
    const double recheck =
        options_.enableCorrection
            ? target * options_.correctionTriggerFactor
            : 0.0;

    if (rationaleEnabled_) {
        rationale_.hasTarget = true;
        rationale_.targetMs = target;
        rationale_.loadValue = load;
        rationale_.speedupAtDegree = profile.speedup(degree);
        rationale_.estimatedMs =
            profile.parallelTimeMs(request.predictedMs, degree);
        rationale_.profileClass =
            speedupModel_
                .groups()[speedupModel_.groupIndexFor(request.predictedMs)]
                .name.c_str();
    }
    return {degree, recheck};
}

policy::Decision
TpcPolicy::onRecheck(const policy::RequestView& request,
                     const policy::SystemState& state)
{
    TPC_DCHECK(options_.enableCorrection);

    // Dynamic correction: the request outlived its target. Ramp its degree
    // up using the available spare resources (idle worker threads), capped
    // at the maximum degree.
    const int current = std::max(1, request.currentDegree);
    const int desired =
        std::min(options_.maxDegree, current + state.idleWorkers);

    if (desired > current) {
        ++counters_.corrections;
        counters_.correctionThreadsAdded +=
            static_cast<std::uint64_t>(desired - current);
    }

    // Keep watching until the request reaches the maximum degree: more
    // workers may free up later even if none are idle right now.
    double recheck = 0.0;
    if (desired < options_.maxDegree) {
        recheck = options_.correctionRecheckMs > 0.0
                      ? options_.correctionRecheckMs
                      : activeTable().targetFor(policy::loadMetricValue(
                            options_.loadMetric, state));
    }
    return {desired, recheck};
}

} // namespace tpc::core
