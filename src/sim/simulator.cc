#include "sim/simulator.h"

#include "util/logging.h"

namespace tpc::sim {

EventId
Simulator::schedule(double timeMs, std::function<void()> fn)
{
    TPC_CHECK(fn != nullptr);
    TPC_CHECK_MSG(timeMs >= now_, "cannot schedule into the past");
    const EventId id = nextId_++;
    heap_.push(Node{timeMs, nextSeq_++, id, std::move(fn)});
    return id;
}

EventId
Simulator::scheduleAfter(double delayMs, std::function<void()> fn)
{
    TPC_CHECK(delayMs >= 0.0);
    return schedule(now_ + delayMs, std::move(fn));
}

void
Simulator::cancel(EventId id)
{
    if (id == kInvalidEventId)
        return;
    cancelled_.insert(id);
}

bool
Simulator::runNext()
{
    while (!heap_.empty()) {
        // priority_queue::top is const; the function is moved out after a
        // copy of the metadata, then popped.
        const Node& top = heap_.top();
        if (cancelled_.erase(top.id) > 0) {
            heap_.pop();
            continue;
        }
        TPC_DCHECK(top.time >= now_);
        now_ = top.time;
        auto fn = std::move(const_cast<Node&>(top).fn);
        heap_.pop();
        ++firedEvents_;
        fn();
        return true;
    }
    return false;
}

void
Simulator::runUntilEmpty()
{
    while (runNext()) {
    }
}

void
Simulator::runUntil(double timeMs)
{
    TPC_CHECK(timeMs >= now_);
    while (!heap_.empty()) {
        const Node& top = heap_.top();
        if (cancelled_.count(top.id)) {
            cancelled_.erase(top.id);
            heap_.pop();
            continue;
        }
        if (top.time > timeMs)
            break;
        runNext();
    }
    now_ = timeMs;
}

} // namespace tpc::sim
