/**
 * @file
 * Discrete-event simulation engine.
 *
 * The server-level experiments (Figures 4-11) replay 100K-request traces
 * at many load points and for many policies; running them in real time
 * like the paper's testbed would take hours per figure. The engine
 * advances a virtual millisecond clock through scheduled events instead,
 * which preserves the queueing and malleable-parallelism dynamics that
 * produce the figures while regenerating each one in seconds.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace tpc::sim {

/** Handle to a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel returned for events that can never be cancelled. */
inline constexpr EventId kInvalidEventId = 0;

/**
 * Event-driven virtual clock. Events fire in timestamp order; ties fire
 * in scheduling order, so runs are fully deterministic.
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Current virtual time in milliseconds. */
    double now() const { return now_; }

    /**
     * Schedules @p fn at absolute virtual time @p timeMs (>= now).
     * @return Id usable with cancel().
     */
    EventId schedule(double timeMs, std::function<void()> fn);

    /** Schedules @p fn after a delay relative to now. */
    EventId scheduleAfter(double delayMs, std::function<void()> fn);

    /**
     * Cancels a pending event. Cancelling an already-fired or unknown id
     * is a no-op (lazy deletion keeps this O(1)).
     */
    void cancel(EventId id);

    /**
     * Fires the earliest pending event.
     * @return false when no events remain.
     */
    bool runNext();

    /** Runs until the queue empties. */
    void runUntilEmpty();

    /** Runs events with timestamps <= @p timeMs, then sets now to it. */
    void runUntil(double timeMs);

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingEvents() const
    {
        return heap_.size() - cancelled_.size();
    }

    /** Total events fired since construction (telemetry). */
    std::uint64_t firedEvents() const { return firedEvents_; }

  private:
    struct Node
    {
        double time;
        std::uint64_t seq;
        EventId id;
        std::function<void()> fn;

        bool operator>(const Node& other) const
        {
            if (time != other.time)
                return time > other.time;
            return seq > other.seq;
        }
    };

    double now_ = 0.0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::uint64_t firedEvents_ = 0;
    std::priority_queue<Node, std::vector<Node>, std::greater<>> heap_;
    std::unordered_set<EventId> cancelled_;
};

} // namespace tpc::sim
