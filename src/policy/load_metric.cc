#include "policy/load_metric.h"

#include "util/logging.h"

namespace tpc::policy {

std::string
loadMetricName(LoadMetric metric)
{
    switch (metric) {
      case LoadMetric::LongThreads:
        return "LongT";
      case LoadMetric::AllThreads:
        return "AllT";
      case LoadMetric::CpuUtilization:
        return "CpuUtil";
    }
    TPC_CHECK(false);
    return "?";
}

double
loadMetricValue(LoadMetric metric, const SystemState& state)
{
    switch (metric) {
      case LoadMetric::LongThreads:
        return state.activeThreadsLong;
      case LoadMetric::AllThreads:
        return state.activeThreadsAll;
      case LoadMetric::CpuUtilization:
        return state.cpuUtilization * state.hwContexts;
    }
    TPC_CHECK(false);
    return 0.0;
}

} // namespace tpc::policy
