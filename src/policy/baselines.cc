#include "policy/baselines.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace tpc::policy {

// --- PredPolicy -------------------------------------------------------------

PredPolicy::PredPolicy(double longThresholdMs, int parallelDegree)
    : longThresholdMs_(longThresholdMs), parallelDegree_(parallelDegree)
{
    TPC_CHECK(longThresholdMs > 0.0);
    TPC_CHECK(parallelDegree >= 1);
}

Decision
PredPolicy::onDispatch(const RequestView& request, const SystemState&)
{
    if (request.predictedMs > longThresholdMs_)
        return {parallelDegree_, 0.0};
    return {1, 0.0};
}

// --- ApPolicy ---------------------------------------------------------------

ApPolicy::ApPolicy(SpeedupProfile averageProfile, int maxDegree)
    : averageProfile_(std::move(averageProfile)), maxDegree_(maxDegree)
{
    TPC_CHECK(maxDegree >= 1);
}

Decision
ApPolicy::onDispatch(const RequestView&, const SystemState& state)
{
    // EuroSys'13-style objective: with N requests in the system all given
    // degree d on a K-worker server, a request's estimated completion time
    // is (L/S_d) x max(1, N*d/K) — the second factor is the slowdown once
    // the symmetric allocation oversubscribes the workers. L cancels out
    // of the argmin. AP does not differentiate requests, so every request
    // gets the same degree for a given load.
    const double n = 1.0 + state.runningRequests + state.queueLength;
    const double k = std::max(1, state.totalWorkers);
    int bestDegree = 1;
    double bestCost = std::numeric_limits<double>::max();
    const int limit = std::min(maxDegree_, averageProfile_.maxDegree());
    for (int d = 1; d <= limit; ++d) {
        const double crowding = std::max(1.0, n * d / k);
        const double cost = crowding / averageProfile_.speedup(d);
        if (cost < bestCost) {
            bestCost = cost;
            bestDegree = d;
        }
    }
    return {bestDegree, 0.0};
}

// --- WqLinearPolicy ----------------------------------------------------------

WqLinearPolicy::WqLinearPolicy(int maxDegree, double slope)
    : maxDegree_(maxDegree), slope_(slope)
{
    TPC_CHECK(maxDegree >= 1);
    TPC_CHECK(slope > 0.0);
}

Decision
WqLinearPolicy::onDispatch(const RequestView&, const SystemState& state)
{
    const double raw =
        static_cast<double>(maxDegree_) - slope_ * state.queueLength;
    const int degree =
        std::clamp(static_cast<int>(std::floor(raw)), 1, maxDegree_);
    return {degree, 0.0};
}

// --- RampUpPolicy -------------------------------------------------------------

RampUpPolicy::RampUpPolicy(double intervalMs, int maxDegree)
    : intervalMs_(intervalMs), maxDegree_(maxDegree)
{
    TPC_CHECK(intervalMs > 0.0);
    TPC_CHECK(maxDegree >= 1);
}

std::string
RampUpPolicy::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "RampUp-%gms", intervalMs_);
    return buf;
}

Decision
RampUpPolicy::onDispatch(const RequestView&, const SystemState&)
{
    return {1, intervalMs_};
}

Decision
RampUpPolicy::onRecheck(const RequestView& request, const SystemState&)
{
    const int next = std::min(request.currentDegree + 1, maxDegree_);
    const double recheck = (next < maxDegree_) ? intervalMs_ : 0.0;
    return {next, recheck};
}

// --- FewToManyPolicy ----------------------------------------------------------

FewToManyPolicy::FewToManyPolicy(std::vector<IntervalEntry> schedule,
                                 int maxDegree)
    : schedule_(std::move(schedule)), maxDegree_(maxDegree)
{
    TPC_CHECK(!schedule_.empty());
    TPC_CHECK(maxDegree >= 1);
    for (std::size_t i = 1; i < schedule_.size(); ++i)
        TPC_CHECK_MSG(schedule_[i].maxLoad > schedule_[i - 1].maxLoad,
                      "schedule loads must ascend");
}

FewToManyPolicy
FewToManyPolicy::withDefaultSchedule(int maxDegree)
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    // Idle system: ramp fast; busy system: ramp slowly or not at all.
    return FewToManyPolicy({{2.0, 4.0},
                            {6.0, 8.0},
                            {12.0, 16.0},
                            {20.0, 32.0},
                            {kInf, 0.0}},
                           maxDegree);
}

double
FewToManyPolicy::intervalFor(const SystemState& state) const
{
    const double load = state.runningRequests + state.queueLength;
    for (const auto& entry : schedule_) {
        if (load <= entry.maxLoad)
            return entry.intervalMs;
    }
    return schedule_.back().intervalMs;
}

Decision
FewToManyPolicy::onDispatch(const RequestView&, const SystemState& state)
{
    return {1, intervalFor(state)};
}

Decision
FewToManyPolicy::onRecheck(const RequestView& request,
                           const SystemState& state)
{
    const int next = std::min(request.currentDegree + 1, maxDegree_);
    const double interval = intervalFor(state);
    const double recheck =
        (next < maxDegree_ && interval > 0.0) ? interval : 0.0;
    return {next, recheck};
}

} // namespace tpc::policy
