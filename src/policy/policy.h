/**
 * @file
 * The parallelism-policy interface shared by TPC and every baseline.
 *
 * A policy decides the parallelism degree of a request twice: once at
 * dispatch (before execution starts) and, if it asked to be called back,
 * again while the request runs (dynamic correction / ramp-up). The server
 * — simulated or threaded — owns queueing and resource accounting; the
 * policy sees a read-only view of the request and the system.
 */
#pragma once

#include <cstdint>
#include <string>

namespace tpc::policy {

/** Read-only view of one request as the policy sees it. */
struct RequestView
{
    /** Stable request id. */
    std::uint64_t id = 0;
    /** Predictor's estimate of the sequential execution time (ms). */
    double predictedMs = 0.0;
    /** Time since dispatch (0 at dispatch time). */
    double elapsedMs = 0.0;
    /** Current parallelism degree (0 at dispatch time). */
    int currentDegree = 0;
};

/** Read-only snapshot of server state at decision time. */
struct SystemState
{
    /** Total worker threads in the pool. */
    int totalWorkers = 0;
    /** Workers not assigned to any request. */
    int idleWorkers = 0;
    /** Requests waiting in the queue. */
    int queueLength = 0;
    /** Requests currently executing. */
    int runningRequests = 0;
    /** Sum of degrees of all running requests. */
    int activeThreadsAll = 0;
    /** Sum of degrees of running requests classified long. */
    int activeThreadsLong = 0;
    /** Sampled, smoothed CPU utilization in [0, 1]. */
    double cpuUtilization = 0.0;
    /** Number of hardware contexts. */
    int hwContexts = 0;
    /** Current time (ms). */
    double nowMs = 0.0;
    /** Running average of predicted request demand (ms); AP's input. */
    double avgPredictedMs = 0.0;
};

/** A policy's answer: the degree to run at, and when to ask again. */
struct Decision
{
    /** Desired parallelism degree (the server may cap by idle workers). */
    int degree = 1;
    /**
     * If > 0, the server calls onRecheck after this many ms unless the
     * request completed first.
     */
    double recheckAfterMs = 0.0;
};

/** Interface implemented by TPC and all competing techniques. */
class ParallelismPolicy
{
  public:
    virtual ~ParallelismPolicy() = default;

    /** Human-readable policy name used in result tables. */
    virtual std::string name() const = 0;

    /** Decides the initial degree when the request leaves the queue. */
    virtual Decision onDispatch(const RequestView& request,
                                const SystemState& state) = 0;

    /**
     * Called while the request runs, at the time requested by the previous
     * decision. Default: keep the current degree and stop rechecking.
     */
    virtual Decision onRecheck(const RequestView& request,
                               const SystemState& state)
    {
        (void)state;
        return {request.currentDegree, 0.0};
    }
};

} // namespace tpc::policy
