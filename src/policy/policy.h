/**
 * @file
 * The parallelism-policy interface shared by TPC and every baseline.
 *
 * A policy decides the parallelism degree of a request twice: once at
 * dispatch (before execution starts) and, if it asked to be called back,
 * again while the request runs (dynamic correction / ramp-up). The server
 * — simulated or threaded — owns queueing and resource accounting; the
 * policy sees a read-only view of the request and the system.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tpc::policy {

/** Read-only view of one request as the policy sees it. */
struct RequestView
{
    /** Stable request id. */
    std::uint64_t id = 0;
    /** Predictor's estimate of the sequential execution time (ms). */
    double predictedMs = 0.0;
    /** Time since dispatch (0 at dispatch time). */
    double elapsedMs = 0.0;
    /** Current parallelism degree (0 at dispatch time). */
    int currentDegree = 0;
};

/** Read-only snapshot of server state at decision time. */
struct SystemState
{
    /** Total worker threads in the pool. */
    int totalWorkers = 0;
    /** Workers not assigned to any request. */
    int idleWorkers = 0;
    /** Requests waiting in the queue. */
    int queueLength = 0;
    /** Requests currently executing. */
    int runningRequests = 0;
    /** Sum of degrees of all running requests. */
    int activeThreadsAll = 0;
    /** Sum of degrees of running requests classified long. */
    int activeThreadsLong = 0;
    /** Sampled, smoothed CPU utilization in [0, 1]. */
    double cpuUtilization = 0.0;
    /** Number of hardware contexts. */
    int hwContexts = 0;
    /** Current time (ms). */
    double nowMs = 0.0;
    /** Running average of predicted request demand (ms); AP's input. */
    double avgPredictedMs = 0.0;
};

/**
 * Why a dispatch decision chose its degree. Policies fill what applies to
 * them (TPC fills everything; a fixed-degree baseline fills nothing);
 * servers copy it into DISPATCH trace events so a trace alone explains
 * every degree choice. Kept out of Decision so the untraced dispatch path
 * returns the same 16-byte aggregate it always did — servers fetch the
 * rationale via lastRationale() only while tracing.
 */
struct DecisionRationale
{
    /** True when targetMs/loadValue are meaningful. */
    bool hasTarget = false;
    /** Load-dependent target completion time E (ms). */
    double targetMs = 0.0;
    /** Load-metric value used for the target-table lookup. */
    double loadValue = 0.0;
    /** Speedup the table promises at the chosen degree. */
    double speedupAtDegree = 0.0;
    /** Estimated wall time at the chosen degree: predicted / speedup. */
    double estimatedMs = 0.0;
    /**
     * Name of the speedup-table row (request class) consulted. Points into
     * the policy's speedup model (valid while the policy lives); servers
     * copy it into the trace event at dispatch, never store the pointer.
     */
    const char* profileClass = nullptr;
};

/**
 * Point-in-time description of a policy's internal state for live
 * introspection (/statsz). Unlike DecisionRationale, which explains one
 * decision, this summarizes the policy itself: its identity, its target
 * table (when it has one), and its lifetime counters. Policies fill what
 * applies; the default carries only the name.
 */
struct PolicySnapshot
{
    std::string name;
    /** True when targetTable below is meaningful. */
    bool hasTargetTable = false;
    /** (load bucket upper bound, target E ms) rows, ascending by load. */
    std::vector<std::pair<double, double>> targetTable;
    /**
     * Version of the live table the policy is consuming (0 when the
     * policy holds a plain static table) and its provenance
     * ("offline"/"adapted"); see core::VersionedTargetTable.
     */
    std::uint64_t tableVersion = 0;
    std::string tableSource;
    /**
     * Version of the live predictor model the dispatch path is consuming
     * (0 when predictions arrive precomputed with the job) and its
     * provenance ("offline"/"retrained"); see predict::VersionedPredictor.
     * Filled by the serving layer (ThreadedServer::policySnapshot), which
     * owns the model handle.
     */
    std::uint64_t modelVersion = 0;
    std::string modelSource;
    std::uint64_t dispatches = 0;
    std::uint64_t corrections = 0;
    std::uint64_t correctionThreadsAdded = 0;
};

/** A policy's answer: the degree to run at, and when to ask again. */
struct Decision
{
    /** Desired parallelism degree (the server may cap by idle workers). */
    int degree = 1;
    /**
     * If > 0, the server calls onRecheck after this many ms unless the
     * request completed first.
     */
    double recheckAfterMs = 0.0;
};

/** Interface implemented by TPC and all competing techniques. */
class ParallelismPolicy
{
  public:
    virtual ~ParallelismPolicy() = default;

    /** Human-readable policy name used in result tables. */
    virtual std::string name() const = 0;

    /** Decides the initial degree when the request leaves the queue. */
    virtual Decision onDispatch(const RequestView& request,
                                const SystemState& state) = 0;

    /**
     * Called while the request runs, at the time requested by the previous
     * decision. Default: keep the current degree and stop rechecking.
     */
    virtual Decision onRecheck(const RequestView& request,
                               const SystemState& state)
    {
        (void)state;
        return {request.currentDegree, 0.0};
    }

    /**
     * Servers call this with true when a trace recorder is attached.
     * Policies whose rationale costs anything to assemble (extra table
     * lookups, class-name resolution) may skip it entirely while
     * disabled, keeping the untraced dispatch path at its baseline cost.
     * Default: ignore the hint.
     */
    virtual void setRationaleEnabled(bool enabled) { (void)enabled; }

    /**
     * Audit trail of the most recent onDispatch on this policy, or
     * nullptr if the policy records none (the default, and always the
     * case before rationale recording is enabled). Valid until the next
     * onDispatch; servers read it immediately while building the DISPATCH
     * trace event.
     */
    virtual const DecisionRationale* lastRationale() const
    {
        return nullptr;
    }

    /**
     * Introspection snapshot for the /statsz endpoint. Must be called
     * from the thread that owns policy interactions (servers call it
     * under their scheduler lock); the default reports only the name.
     */
    virtual PolicySnapshot introspect() const
    {
        PolicySnapshot snapshot;
        snapshot.name = name();
        return snapshot;
    }
};

} // namespace tpc::policy
