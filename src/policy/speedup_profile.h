/**
 * @file
 * Parallelism-efficiency model: per-class speedup profiles.
 *
 * Section 2.4 of the paper measures the average speedup of queries grouped
 * by sequential execution time (Figure 2): long queries (> 80 ms) reach
 * ~4.1x on 6 threads, medium queries (30-80 ms) ~2x, and short queries
 * (< 30 ms) only ~1.16x because of non-parallelized phases and load
 * imbalance. TPC consumes these profiles to pick the smallest degree that
 * meets the target completion time.
 */
#pragma once

#include <string>
#include <vector>

namespace tpc::policy {

/** Maps parallelism degree to speedup for one request class. */
class SpeedupProfile
{
  public:
    /**
     * @param speedups speedups[i] is the speedup at degree i+1; the first
     *                 entry must be 1 and the sequence must be
     *                 non-decreasing.
     */
    explicit SpeedupProfile(std::vector<double> speedups);

    /** Speedup at the given degree (clamped to the profile's max). */
    double speedup(int degree) const;

    /** Largest degree the profile covers. */
    int maxDegree() const { return static_cast<int>(speedups_.size()); }

    /** Estimated wall time of a request at the given degree. */
    double parallelTimeMs(double sequentialMs, int degree) const
    {
        return sequentialMs / speedup(degree);
    }

    /**
     * Smallest degree d with sequentialMs / speedup(d) <= targetMs, or 0
     * when even the maximum degree cannot meet the target.
     */
    int smallestDegreeToMeet(double sequentialMs, double targetMs) const;

    const std::vector<double>& values() const { return speedups_; }

  private:
    std::vector<double> speedups_;
};

/**
 * A set of speedup profiles keyed by sequential-execution-time class.
 *
 * Classes partition [0, inf) by upper bounds; the last class is open-ended.
 */
class SpeedupModel
{
  public:
    /** One class: requests with sequential time <= upperBoundMs. */
    struct Group
    {
        /** Class upper bound; infinity for the last class. */
        double upperBoundMs;
        std::string name;
        SpeedupProfile profile;
    };

    /** @param groups Classes in ascending upper-bound order (>= 1). */
    explicit SpeedupModel(std::vector<Group> groups);

    /** Profile for a request with the given (predicted or true) time. */
    const SpeedupProfile& profileFor(double sequentialMs) const;

    /** Index of the class containing the given time. */
    std::size_t groupIndexFor(double sequentialMs) const;

    const std::vector<Group>& groups() const { return groups_; }
    std::size_t groupCount() const { return groups_.size(); }

    /** Largest degree across all profiles. */
    int maxDegree() const;

    /**
     * The web-search model from Figure 2: short (< 30 ms), mid (30-80 ms)
     * and long (> 80 ms) classes with 6-thread speedups of about 1.16, 2.05
     * and 4.1.
     */
    static SpeedupModel webSearchDefault();

    /**
     * Six-group refinement of the web-search model (each Figure 2 class
     * split in two), used by the Section 4.6 group-count sensitivity study.
     */
    static SpeedupModel webSearchSixGroups();

    /**
     * Finance model (Section 5): regular Monte Carlo iterations
     * parallelize well; maximum degree 4.
     */
    static SpeedupModel financeDefault();

    /**
     * A demand-weighted average profile across the web-search classes,
     * used by the AP baseline, which does not differentiate classes.
     */
    static SpeedupProfile webSearchAverageProfile();

  private:
    std::vector<Group> groups_;
};

} // namespace tpc::policy
