/**
 * @file
 * System-load metrics for the target-table lookup (Section 4.6).
 *
 * The paper compares three ways of measuring instantaneous load: the
 * number of active threads of long queries (LongT, the default and best),
 * the total number of active threads (AllT), and sampled CPU utilization
 * (CpuUtil, a lagging moving average that performs worst).
 */
#pragma once

#include <string>

#include "policy/policy.h"

namespace tpc::policy {

/** Which SystemState field the target-table lookup keys on. */
enum class LoadMetric {
    /** Active threads running long requests (paper default). */
    LongThreads,
    /** All active threads. */
    AllThreads,
    /** Smoothed CPU utilization scaled to thread units. */
    CpuUtilization,
};

/** Human-readable metric name (LongT / AllT / CpuUtil). */
std::string loadMetricName(LoadMetric metric);

/**
 * Extracts the metric's current value from a state snapshot. CpuUtil is
 * scaled by the hardware-context count so all metrics share thread units
 * and one target table can express any of them.
 */
double loadMetricValue(LoadMetric metric, const SystemState& state);

} // namespace tpc::policy
