#include "policy/speedup_profile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace tpc::policy {

SpeedupProfile::SpeedupProfile(std::vector<double> speedups)
    : speedups_(std::move(speedups))
{
    TPC_CHECK(!speedups_.empty());
    TPC_CHECK_MSG(std::abs(speedups_.front() - 1.0) < 1e-9,
                  "speedup at degree 1 must be 1");
    for (std::size_t i = 1; i < speedups_.size(); ++i)
        TPC_CHECK_MSG(speedups_[i] >= speedups_[i - 1],
                      "speedups must be non-decreasing");
}

double
SpeedupProfile::speedup(int degree) const
{
    TPC_CHECK(degree >= 1);
    const auto idx = std::min<std::size_t>(static_cast<std::size_t>(degree),
                                           speedups_.size());
    return speedups_[idx - 1];
}

int
SpeedupProfile::smallestDegreeToMeet(double sequentialMs,
                                     double targetMs) const
{
    TPC_CHECK(sequentialMs >= 0.0);
    TPC_CHECK(targetMs > 0.0);
    for (int d = 1; d <= maxDegree(); ++d) {
        if (parallelTimeMs(sequentialMs, d) <= targetMs)
            return d;
    }
    return 0;
}

SpeedupModel::SpeedupModel(std::vector<Group> groups)
    : groups_(std::move(groups))
{
    TPC_CHECK(!groups_.empty());
    for (std::size_t i = 1; i < groups_.size(); ++i)
        TPC_CHECK_MSG(groups_[i].upperBoundMs > groups_[i - 1].upperBoundMs,
                      "group bounds must be ascending");
}

std::size_t
SpeedupModel::groupIndexFor(double sequentialMs) const
{
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        if (sequentialMs <= groups_[i].upperBoundMs)
            return i;
    }
    return groups_.size() - 1;
}

const SpeedupProfile&
SpeedupModel::profileFor(double sequentialMs) const
{
    return groups_[groupIndexFor(sequentialMs)].profile;
}

int
SpeedupModel::maxDegree() const
{
    int max = 1;
    for (const auto& g : groups_)
        max = std::max(max, g.profile.maxDegree());
    return max;
}

SpeedupModel
SpeedupModel::webSearchDefault()
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    return SpeedupModel({
        {30.0, "short", SpeedupProfile({1.0, 1.10, 1.13, 1.15, 1.16, 1.16})},
        {80.0, "mid", SpeedupProfile({1.0, 1.55, 1.80, 1.95, 2.02, 2.05})},
        {kInf, "long", SpeedupProfile({1.0, 1.90, 2.70, 3.40, 3.85, 4.10})},
    });
}

SpeedupModel
SpeedupModel::webSearchSixGroups()
{
    // Each Figure 2 class split in two; neighbouring profiles are close,
    // which is why Section 4.6 finds <= 0.65% improvement from refinement.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    return SpeedupModel({
        {15.0, "short-lo",
         SpeedupProfile({1.0, 1.08, 1.10, 1.12, 1.13, 1.13})},
        {30.0, "short-hi",
         SpeedupProfile({1.0, 1.12, 1.16, 1.18, 1.19, 1.19})},
        {55.0, "mid-lo", SpeedupProfile({1.0, 1.50, 1.72, 1.86, 1.93, 1.96})},
        {80.0, "mid-hi", SpeedupProfile({1.0, 1.60, 1.88, 2.04, 2.11, 2.14})},
        {140.0, "long-lo",
         SpeedupProfile({1.0, 1.85, 2.60, 3.25, 3.68, 3.92})},
        {kInf, "long-hi",
         SpeedupProfile({1.0, 1.95, 2.80, 3.55, 4.02, 4.28})},
    });
}

SpeedupModel
SpeedupModel::financeDefault()
{
    // Monte Carlo path simulation has a regular fork/join structure with a
    // small sequential setup, so both classes parallelize well; degree <= 4
    // as in Section 5.1.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    return SpeedupModel({
        {30.0, "short", SpeedupProfile({1.0, 1.80, 2.40, 2.80})},
        {kInf, "long", SpeedupProfile({1.0, 1.95, 2.85, 3.70})},
    });
}

SpeedupProfile
SpeedupModel::webSearchAverageProfile()
{
    // Demand-weighted average across classes: long queries contribute most
    // of the total work, so the average sits between the mid and long
    // profiles. AP (EuroSys 2013) uses exactly this kind of aggregate.
    return SpeedupProfile({1.0, 1.70, 2.30, 2.80, 3.10, 3.30});
}

} // namespace tpc::policy
