/**
 * @file
 * The prior-work parallelization policies TPC is compared against
 * (Table 1 / Section 4.1 of the paper):
 *
 *  - Sequential: every request runs on one thread.
 *  - Pred (Jeon et al., SIGIR 2014): predicted-long requests run at a
 *    fixed degree; everything else is sequential. Uses prediction only.
 *  - AP, Adaptive Parallelism (Jeon et al., EuroSys 2013): degree chosen
 *    from system load and the average speedup of all requests; does not
 *    differentiate short and long requests.
 *  - WQ-Linear (Raman et al., PLDI 2011): degree inversely related to the
 *    waiting-queue length; uses load only.
 *  - RampUp (Section 4.4; Haque et al., ASPLOS 2015-style): start
 *    sequential, add one thread per fixed interval while running.
 */
#pragma once

#include "policy/policy.h"
#include "policy/speedup_profile.h"

namespace tpc::policy {

/** Baseline: sequential execution for every request. */
class SequentialPolicy final : public ParallelismPolicy
{
  public:
    std::string name() const override { return "Sequential"; }

    Decision onDispatch(const RequestView&, const SystemState&) override
    {
        return {1, 0.0};
    }
};

/**
 * Pred: fixed-degree parallelization of predicted-long requests.
 *
 * The paper runs Pred with a 80 ms threshold and 3-way parallelism for web
 * search (Section 4.2) and degree 2 for finance (Section 5.1).
 */
class PredPolicy final : public ParallelismPolicy
{
  public:
    /**
     * @param longThresholdMs Requests predicted above this run in parallel.
     * @param parallelDegree  Fixed degree for predicted-long requests.
     */
    PredPolicy(double longThresholdMs, int parallelDegree);

    std::string name() const override { return "Pred"; }

    Decision onDispatch(const RequestView& request,
                        const SystemState& state) override;

  private:
    double longThresholdMs_;
    int parallelDegree_;
};

/**
 * AP: adaptive parallelism from system load and average speedup.
 *
 * Chooses the degree d minimizing the estimated total response time of the
 * requests in the system: the new request's own completion time L/S_d plus
 * the delay its d-thread occupancy imposes on the q queued requests,
 * (L/S_d) * q * d / K for a K-worker server. All requests get the same
 * degree because AP uses only the average demand and average speedup.
 */
class ApPolicy final : public ParallelismPolicy
{
  public:
    /**
     * @param averageProfile Average speedup of all requests.
     * @param maxDegree      Upper bound on the chosen degree.
     */
    ApPolicy(SpeedupProfile averageProfile, int maxDegree);

    std::string name() const override { return "AP"; }

    Decision onDispatch(const RequestView& request,
                        const SystemState& state) override;

  private:
    SpeedupProfile averageProfile_;
    int maxDegree_;
};

/**
 * WQ-Linear: degree decreases linearly with the waiting-queue length,
 * ignoring per-request information.
 */
class WqLinearPolicy final : public ParallelismPolicy
{
  public:
    /**
     * @param maxDegree Degree used on an empty queue.
     * @param slope     Degree lost per queued request.
     */
    WqLinearPolicy(int maxDegree, double slope = 1.0);

    std::string name() const override { return "WQ-Linear"; }

    Decision onDispatch(const RequestView& request,
                        const SystemState& state) override;

  private:
    int maxDegree_;
    double slope_;
};

/**
 * RampUp: start sequential and add one thread every fixed interval until
 * completion or the maximum degree (dynamic parallelism without
 * prediction; Section 4.4).
 */
class RampUpPolicy final : public ParallelismPolicy
{
  public:
    /**
     * @param intervalMs Interval between degree increments (5/10/20 ms in
     *                   the paper's sweep).
     * @param maxDegree  Degree cap (6 in the paper).
     */
    RampUpPolicy(double intervalMs, int maxDegree);

    std::string name() const override;

    Decision onDispatch(const RequestView& request,
                        const SystemState& state) override;

    Decision onRecheck(const RequestView& request,
                       const SystemState& state) override;

  private:
    double intervalMs_;
    int maxDegree_;
};

/**
 * Few-to-Many incremental parallelism (Haque et al., ASPLOS 2015): like
 * RampUp, requests start sequential and gain threads over time, but the
 * ramp-up interval adapts to system load through an offline-computed
 * interval schedule — fast ramp-up when the system is idle, slow (or
 * none) when it is busy. Still no per-request prediction: the paper's
 * Section 6 notes this is "load-aware RampUp without prediction", and
 * Figure 7's conclusion applies — long requests still start sequential
 * and lose time relative to TPC.
 */
class FewToManyPolicy final : public ParallelismPolicy
{
  public:
    /** One (load upper bound, ramp interval) schedule entry. */
    struct IntervalEntry
    {
        /** Applies while (queued + running) requests <= this bound. */
        double maxLoad;
        /** Thread-addition interval at this load; <= 0 disables ramping. */
        double intervalMs;
    };

    /**
     * @param schedule  Entries ascending by maxLoad; the last entry should
     *                  have an infinite bound.
     * @param maxDegree Degree cap.
     */
    FewToManyPolicy(std::vector<IntervalEntry> schedule, int maxDegree);

    /** The default schedule used in the experiments. */
    static FewToManyPolicy withDefaultSchedule(int maxDegree);

    std::string name() const override { return "FewToMany"; }

    Decision onDispatch(const RequestView& request,
                        const SystemState& state) override;

    Decision onRecheck(const RequestView& request,
                       const SystemState& state) override;

  private:
    double intervalFor(const SystemState& state) const;

    std::vector<IntervalEntry> schedule_;
    int maxDegree_;
};

} // namespace tpc::policy
