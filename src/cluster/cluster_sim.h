/**
 * @file
 * Partition-aggregate cluster simulation (Figure 1 / Section 4.5).
 *
 * An aggregator fans every query out to N index-serving nodes; the web
 * index is document-sharded, so each ISN executes the query against its
 * own fragment and the aggregator waits for the slowest ISN before
 * merging. Per-(query, ISN) demand jitter models the shard-to-shard
 * variation of the same query; network and merge delays are small
 * constants, matching the paper's observation that non-computation parts
 * are a minor fraction of latency (Section 2.2).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "harness/experiment.h"
#include "policy/policy.h"
#include "policy/speedup_profile.h"
#include "server/sim_server.h"
#include "stats/latency_recorder.h"

namespace tpc::cluster {

/** Cluster shape and timing constants. */
struct ClusterConfig
{
    /** Number of index-serving nodes (40 in Section 4.5). */
    int numIsns = 40;
    /** Per-ISN machine shape. */
    server::ServerConfig isn;
    /** One-way aggregator-to-ISN network delay (ms). */
    double networkDelayMs = 1.0;
    /** Aggregator merge + response time after the slowest ISN (ms). */
    double mergeDelayMs = 1.1;
    /** Lognormal sigma of per-(query, ISN) demand jitter driven by shard
     *  content (which documents the shard holds); shared by replicas of
     *  the same shard and visible to the shard-local predictor. */
    double demandJitterSigma = 0.22;
    /** Lognormal sigma of per-copy machine jitter (cache state,
     *  interference): independent across replicas and invisible to the
     *  predictor. This is the component hedged requests can remove. */
    double machineJitterSigma = 0.0;
    /** Mean query arrival rate at the aggregator (QPS). */
    double qps = 300.0;
    std::uint64_t seed = 99;
    /** Optional lifecycle-trace recorder attached to every ISN (borrowed;
     *  the trace pid is the ISN index — hedged runs use the server index,
     *  replicas being numIsns..2*numIsns-1). */
    obs::TraceRecorder* trace = nullptr;
    /** Optional metrics registry shared by every ISN (borrowed). */
    obs::MetricsRegistry* metrics = nullptr;
};

/** Latency distributions observed at cluster level. */
struct ClusterResult
{
    /** End-to-end latency at the aggregator (slowest-ISN + overheads). */
    stats::LatencyRecorder aggregatorLatency;
    /** Response latency of a single representative ISN (ISN 0). */
    stats::LatencyRecorder isnLatency;
    /** Simulated time when the last event drained (ms); the end bound for
     *  metrics snapshots covering the whole run. */
    double simEndMs = 0.0;
};

/** Creates one per-ISN policy instance; called once per ISN. */
using PolicyFactory =
    std::function<std::unique_ptr<policy::ParallelismPolicy>()>;

/**
 * Replays the trace through the cluster: each query is broadcast to all
 * ISNs with per-ISN jittered demand (the same jitter scales the
 * prediction, since the shard-local predictor sees shard-local features).
 *
 * @param trace          Global query trace.
 * @param makePolicy     Factory producing each ISN's policy.
 * @param executionModel Ground-truth speedup profiles.
 * @param config         Cluster shape and load.
 */
ClusterResult runCluster(const harness::Trace& trace,
                         const PolicyFactory& makePolicy,
                         const policy::SpeedupModel& executionModel,
                         const ClusterConfig& config);

/** Hedged-request settings (Dean and Barroso, "The Tail at Scale"). */
struct HedgeConfig
{
    /** Reissue a shard sub-request to its replica after this delay. */
    double hedgeDelayMs = 30.0;
    /** Cancel the slower copy once one copy completes. */
    bool cancelLoser = true;
};

/**
 * Cluster with one replica per shard and hedged sub-requests: each shard
 * sub-request goes to the primary; if it has not completed after
 * hedgeDelayMs the aggregator reissues it to the replica and takes
 * whichever copy finishes first. The paper cites this as a technique
 * complementary to TPC for tail sources outside the scheduler's control;
 * this extension quantifies the combination (TPC + hedging vs either
 * alone — see bench_ext_hedging).
 */
ClusterResult runHedgedCluster(const harness::Trace& trace,
                               const PolicyFactory& makePolicy,
                               const policy::SpeedupModel& executionModel,
                               const ClusterConfig& config,
                               const HedgeConfig& hedge);

} // namespace tpc::cluster
