#include "cluster/cluster_sim.h"

#include <algorithm>
#include <cmath>

#include "sim/simulator.h"
#include "util/distributions.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tpc::cluster {

ClusterResult
runCluster(const harness::Trace& trace, const PolicyFactory& makePolicy,
           const policy::SpeedupModel& executionModel,
           const ClusterConfig& config)
{
    TPC_CHECK(!trace.empty());
    TPC_CHECK(config.numIsns >= 1);
    TPC_CHECK(makePolicy != nullptr);

    sim::Simulator sim;
    const auto n = static_cast<std::size_t>(config.numIsns);

    // Per-ISN policies and servers. Outcome storage is disabled: with 40
    // ISNs x 100K queries the callback path alone is retained.
    std::vector<std::unique_ptr<policy::ParallelismPolicy>> policies;
    std::vector<std::unique_ptr<server::SimServer>> servers;
    policies.reserve(n);
    servers.reserve(n);

    // Aggregation state: per query, the number of outstanding ISN
    // sub-requests and the latest sub-completion time.
    std::vector<int> outstanding(trace.size(), 0);
    std::vector<double> slowestCompletionMs(trace.size(), 0.0);
    std::vector<double> arrivalMs(trace.size(), 0.0);

    ClusterResult result;
    result.aggregatorLatency = stats::LatencyRecorder(trace.size());
    result.isnLatency = stats::LatencyRecorder(trace.size());

    for (std::size_t i = 0; i < n; ++i) {
        policies.push_back(makePolicy());
        auto server = std::make_unique<server::SimServer>(
            sim, config.isn, *policies.back(), executionModel);
        server->setStoreOutcomes(false);
        if (config.trace != nullptr)
            server->attachTrace(config.trace, static_cast<int>(i));
        if (config.metrics != nullptr)
            server->attachMetrics(config.metrics);
        const bool isRepresentative = (i == 0);
        server->setCompletionCallback(
            [&, isRepresentative](const server::RequestOutcome& outcome) {
                // Local ids equal global query indices: every ISN receives
                // every query in the same order.
                const std::size_t q =
                    static_cast<std::size_t>(outcome.id);
                TPC_DCHECK(q < trace.size());
                slowestCompletionMs[q] =
                    std::max(slowestCompletionMs[q], outcome.completionMs);
                if (isRepresentative)
                    result.isnLatency.add(outcome.responseMs());
                if (--outstanding[q] == 0) {
                    const double response = slowestCompletionMs[q] +
                                            config.networkDelayMs +
                                            config.mergeDelayMs -
                                            arrivalMs[q];
                    result.aggregatorLatency.add(response);
                }
            });
        servers.push_back(std::move(server));
    }

    // Arrival chain: one aggregator arrival fans out to every ISN after
    // the one-way network delay; per-(query, ISN) jitter scales both the
    // true demand and the prediction.
    util::PoissonProcess arrivals(config.qps, util::Rng(config.seed));
    util::Rng jitterRng(config.seed + 1);
    std::size_t next = 0;
    std::function<void()> arrive = [&] {
        const std::size_t q = next;
        const harness::TraceItem& item = trace[q];
        arrivalMs[q] = sim.now();
        outstanding[q] = config.numIsns;
        std::vector<double> jitter(n);
        for (std::size_t i = 0; i < n; ++i)
            jitter[i] = std::exp(
                jitterRng.normal(0.0, config.demandJitterSigma));
        std::vector<double> machine(n, 1.0);
        if (config.machineJitterSigma > 0.0) {
            for (std::size_t i = 0; i < n; ++i)
                machine[i] = std::exp(
                    jitterRng.normal(0.0, config.machineJitterSigma));
        }
        sim.scheduleAfter(config.networkDelayMs, [&, q, jitter, machine] {
            for (std::size_t i = 0; i < n; ++i) {
                // Machine jitter affects the true cost but not the
                // prediction: the predictor sees shard content, not the
                // machine's transient state.
                servers[i]->submit(trace[q].trueMs * jitter[i] * machine[i],
                                   trace[q].predictedMs * jitter[i]);
            }
        });
        (void)item;
        ++next;
        if (next < trace.size())
            sim.schedule(arrivals.nextArrivalMs(), arrive);
    };
    sim.schedule(arrivals.nextArrivalMs(), arrive);
    sim.runUntilEmpty();
    result.simEndMs = sim.now();

    TPC_CHECK_MSG(result.aggregatorLatency.count() == trace.size(),
                  "cluster run did not complete every query");
    return result;
}

ClusterResult
runHedgedCluster(const harness::Trace& trace,
                 const PolicyFactory& makePolicy,
                 const policy::SpeedupModel& executionModel,
                 const ClusterConfig& config, const HedgeConfig& hedge)
{
    TPC_CHECK(!trace.empty());
    TPC_CHECK(config.numIsns >= 1);
    TPC_CHECK(hedge.hedgeDelayMs > 0.0);

    sim::Simulator sim;
    const auto n = static_cast<std::size_t>(config.numIsns);
    const std::size_t serverCount = 2 * n; // primaries then replicas

    std::vector<std::unique_ptr<policy::ParallelismPolicy>> policies;
    std::vector<std::unique_ptr<server::SimServer>> servers;
    // Per server: local request id -> global query index (submission
    // order assigns local ids sequentially).
    std::vector<std::vector<std::uint32_t>> toQuery(serverCount);

    // Per (query, shard): completion state and the live copies' ids.
    struct ShardState
    {
        bool done = false;
        bool hedged = false;
        std::uint64_t primaryId = 0;
        std::uint64_t replicaId = 0;
    };
    std::vector<ShardState> shards(trace.size() * n);
    auto shardAt = [&](std::size_t q, std::size_t i) -> ShardState& {
        return shards[q * n + i];
    };

    std::vector<int> outstanding(trace.size(), 0);
    std::vector<double> slowestCompletionMs(trace.size(), 0.0);
    std::vector<double> arrivalMs(trace.size(), 0.0);
    // Per-(query, shard) jittered demands, reused for the replica copy
    // (the same shard data costs the same on the replica).
    std::vector<double> shardTrueMs(trace.size() * n, 0.0);
    std::vector<double> shardPredictedMs(trace.size() * n, 0.0);

    ClusterResult result;
    result.aggregatorLatency = stats::LatencyRecorder(trace.size());
    result.isnLatency = stats::LatencyRecorder(trace.size());

    policies.reserve(serverCount);
    servers.reserve(serverCount);
    for (std::size_t s = 0; s < serverCount; ++s) {
        policies.push_back(makePolicy());
        auto server = std::make_unique<server::SimServer>(
            sim, config.isn, *policies.back(), executionModel);
        server->setStoreOutcomes(false);
        if (config.trace != nullptr)
            server->attachTrace(config.trace, static_cast<int>(s));
        if (config.metrics != nullptr)
            server->attachMetrics(config.metrics);
        const std::size_t shard = s % n;
        const bool isReplicaCopy = s >= n;
        server->setCompletionCallback([&, s, shard, isReplicaCopy](
                                          const server::RequestOutcome&
                                              outcome) {
            const std::size_t q = toQuery[s][static_cast<std::size_t>(
                outcome.id)];
            ShardState& state = shardAt(q, shard);
            if (state.done)
                return; // The other copy already won.
            state.done = true;
            if (hedge.cancelLoser) {
                // Cancel the losing copy, if one is in flight.
                if (isReplicaCopy) {
                    servers[shard]->cancel(state.primaryId);
                } else if (state.hedged) {
                    servers[shard + n]->cancel(state.replicaId);
                }
            }
            if (shard == 0 && !isReplicaCopy)
                result.isnLatency.add(outcome.responseMs());
            slowestCompletionMs[q] =
                std::max(slowestCompletionMs[q], outcome.completionMs);
            if (--outstanding[q] == 0) {
                result.aggregatorLatency.add(slowestCompletionMs[q] +
                                             config.networkDelayMs +
                                             config.mergeDelayMs -
                                             arrivalMs[q]);
            }
        });
        servers.push_back(std::move(server));
    }

    util::PoissonProcess arrivals(config.qps, util::Rng(config.seed));
    util::Rng jitterRng(config.seed + 1);
    std::size_t next = 0;
    std::function<void()> arrive = [&] {
        const std::size_t q = next;
        arrivalMs[q] = sim.now();
        outstanding[q] = config.numIsns;
        for (std::size_t i = 0; i < n; ++i) {
            const double jitter = std::exp(
                jitterRng.normal(0.0, config.demandJitterSigma));
            shardTrueMs[q * n + i] = trace[q].trueMs * jitter;
            shardPredictedMs[q * n + i] = trace[q].predictedMs * jitter;
        }
        std::vector<double> primaryMachine(n, 1.0);
        std::vector<double> replicaMachine(n, 1.0);
        if (config.machineJitterSigma > 0.0) {
            for (std::size_t i = 0; i < n; ++i) {
                primaryMachine[i] = std::exp(
                    jitterRng.normal(0.0, config.machineJitterSigma));
                replicaMachine[i] = std::exp(
                    jitterRng.normal(0.0, config.machineJitterSigma));
            }
        }
        sim.scheduleAfter(config.networkDelayMs, [&, q, primaryMachine] {
            for (std::size_t i = 0; i < n; ++i) {
                toQuery[i].push_back(static_cast<std::uint32_t>(q));
                shardAt(q, i).primaryId = servers[i]->submit(
                    shardTrueMs[q * n + i] * primaryMachine[i],
                    shardPredictedMs[q * n + i]);
            }
        });
        // One hedge check per query: reissue every still-incomplete shard
        // to its replica.
        sim.scheduleAfter(
            config.networkDelayMs + hedge.hedgeDelayMs,
            [&, q, replicaMachine] {
                for (std::size_t i = 0; i < n; ++i) {
                    ShardState& state = shardAt(q, i);
                    if (state.done)
                        continue;
                    state.hedged = true;
                    toQuery[i + n].push_back(static_cast<std::uint32_t>(q));
                    // The replica is a different machine: independent
                    // machine jitter on the same shard content.
                    state.replicaId = servers[i + n]->submit(
                        shardTrueMs[q * n + i] * replicaMachine[i],
                        shardPredictedMs[q * n + i]);
                }
            });
        ++next;
        if (next < trace.size())
            sim.schedule(arrivals.nextArrivalMs(), arrive);
    };
    sim.schedule(arrivals.nextArrivalMs(), arrive);
    sim.runUntilEmpty();
    result.simEndMs = sim.now();

    TPC_CHECK_MSG(result.aggregatorLatency.count() == trace.size(),
                  "hedged cluster run did not complete every query");
    return result;
}

} // namespace tpc::cluster
