#include "finance/workload.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace tpc::finance {

harness::Trace
makeFinanceTrace(std::size_t count, const FinanceWorkloadParams& params,
                 std::uint64_t seed)
{
    TPC_CHECK(count > 0);
    TPC_CHECK(params.shortMs > 0.0);
    TPC_CHECK(params.longFactor >= 1.0);
    util::Rng rng(seed);
    harness::Trace trace;
    trace.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const bool isLong = rng.bernoulli(params.longFraction);
        const double base =
            params.shortMs * (isLong ? params.longFactor : 1.0);
        harness::TraceItem item;
        item.trueMs =
            base * std::exp(rng.normal(0.0, params.demandJitterSigma));
        item.predictedMs =
            item.trueMs *
            std::exp(rng.normal(0.0, params.predictionErrorSigma));
        trace.push_back(item);
    }
    return trace;
}

server::ServerConfig
financeServerConfig()
{
    // A small TBB box: 8 SMT contexts over 4 physical cores delivering
    // ~8 core-equivalents. Sized so that AP's parallelization of short
    // requests visibly contends at 150-250 RPS (the Section 5.1 effect)
    // while TPC's allocation stays inside capacity.
    server::ServerConfig config;
    config.numWorkers = 16;
    config.hwContexts = 8;
    config.coreCapacity = 8.0;
    config.longThresholdMs = 30.0;
    return config;
}

} // namespace tpc::finance
