/**
 * @file
 * Finance-server workload (Section 5.1): 10% long requests whose service
 * demand is 9x that of a short request, Poisson arrivals, and accurately
 * estimable execution time (the demand is a deterministic function of the
 * request's path/step counts, so the "predictor" is a near-exact analytic
 * estimate).
 */
#pragma once

#include <cstdint>

#include "harness/experiment.h"
#include "server/sim_server.h"

namespace tpc::finance {

/** Tunables of the finance request mix. */
struct FinanceWorkloadParams
{
    /** Sequential demand of a short request (ms). Solved from the paper's
     *  "3.5 concurrent requests at 200 RPS under TPC" remark. */
    double shortMs = 15.0;
    /** Long demand = shortMs * longFactor (9x in the paper). */
    double longFactor = 9.0;
    /** Fraction of long requests (10% in the paper). */
    double longFraction = 0.10;
    /** Lognormal jitter of true demand around the class mean. */
    double demandJitterSigma = 0.03;
    /** Lognormal error of the analytic estimate (near-exact). */
    double predictionErrorSigma = 0.01;
};

/** Generates the bimodal finance trace. */
harness::Trace makeFinanceTrace(std::size_t count,
                                const FinanceWorkloadParams& params,
                                std::uint64_t seed);

/**
 * Machine shape of the simulated finance server: a smaller box than the
 * ISN (the paper's TBB server), sized so ~3.5 concurrent requests at
 * 200 RPS contend visibly when short requests are over-parallelized.
 */
server::ServerConfig financeServerConfig();

} // namespace tpc::finance
