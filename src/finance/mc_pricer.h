/**
 * @file
 * Monte Carlo pricer for path-dependent Asian options (Section 5.1).
 *
 * The paper's finance server values arithmetic-average Asian options by
 * Monte Carlo simulation of geometric Brownian motion paths: CPU-bound,
 * regular structure, parallelizable over paths, with sequential execution
 * time that is an accurate function of (paths x steps) — exactly the
 * workload-property profile TPC targets (Section 5).
 */
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace tpc::finance {

/** Contract parameters of an arithmetic-average Asian call option. */
struct AsianOptionParams
{
    double spot = 100.0;
    double strike = 100.0;
    /** Risk-free rate (annualized). */
    double riskFreeRate = 0.05;
    /** Volatility (annualized). */
    double volatility = 0.2;
    /** Time to maturity in years. */
    double maturityYears = 1.0;
    /** Monitoring points along each path. */
    int steps = 64;
};

/** Result of one pricing request. */
struct PriceResult
{
    double price = 0.0;
    /** Standard error of the Monte Carlo estimate. */
    double standardError = 0.0;
    std::uint64_t paths = 0;
};

/** Prices Asian options by GBM path simulation. */
class MonteCarloPricer
{
  public:
    /**
     * Prices the option over @p paths simulated paths.
     * Deterministic for a given seed.
     */
    PriceResult price(const AsianOptionParams& params, std::uint64_t paths,
                      std::uint64_t seed) const;

    /**
     * Simulates one chunk of paths and returns (sumPayoff, sumPayoffSq).
     * Chunks with distinct seeds are independent, so chunk results add —
     * this is the parallelizable task body.
     */
    void priceChunk(const AsianOptionParams& params, std::uint64_t paths,
                    std::uint64_t seed, double& sumPayoff,
                    double& sumPayoffSq) const;

    /** Combines chunk sums into the discounted price estimate. */
    static PriceResult combine(const AsianOptionParams& params,
                               std::uint64_t totalPaths, double sumPayoff,
                               double sumPayoffSq);

    /**
     * Prices a *European* call (payoff on the terminal price only) by the
     * same GBM simulation. Used to validate the Monte Carlo machinery
     * against the Black-Scholes closed form.
     */
    PriceResult priceEuropean(const AsianOptionParams& params,
                              std::uint64_t paths, std::uint64_t seed) const;
};

/**
 * Black-Scholes closed-form price of the European call with the same
 * contract parameters (steps are irrelevant for the terminal payoff).
 */
double blackScholesCall(const AsianOptionParams& params);

/** Standard normal cumulative distribution function. */
double standardNormalCdf(double x);

/**
 * Analytic service-demand estimator: sequential pricing time is
 * paths x steps x (calibrated per-step cost). The paper notes this
 * estimate is accurate enough that dynamic correction never fires on the
 * finance server.
 */
class DemandEstimator
{
  public:
    /** Calibrates the per-step cost by timing a short pricing run. */
    static DemandEstimator calibrate(const MonteCarloPricer& pricer,
                                     const AsianOptionParams& params);

    /** Constructs from a known per-step cost (tests, simulation). */
    explicit DemandEstimator(double nsPerStep);

    /** Estimated sequential pricing time in ms. */
    double estimateMs(std::uint64_t paths, int steps) const;

    double nsPerStep() const { return nsPerStep_; }

  private:
    double nsPerStep_;
};

} // namespace tpc::finance
