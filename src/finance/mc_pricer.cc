#include "finance/mc_pricer.h"

#include <chrono>
#include <cmath>

#include "util/logging.h"

namespace tpc::finance {

void
MonteCarloPricer::priceChunk(const AsianOptionParams& params,
                             std::uint64_t paths, std::uint64_t seed,
                             double& sumPayoff, double& sumPayoffSq) const
{
    TPC_CHECK(params.steps >= 1);
    util::Rng rng(seed);
    const double dt = params.maturityYears / params.steps;
    const double drift =
        (params.riskFreeRate - 0.5 * params.volatility * params.volatility) *
        dt;
    const double diffusion = params.volatility * std::sqrt(dt);

    double localSum = 0.0;
    double localSumSq = 0.0;
    for (std::uint64_t p = 0; p < paths; ++p) {
        double logSpot = std::log(params.spot);
        double pathSum = 0.0;
        for (int s = 0; s < params.steps; ++s) {
            logSpot += drift + diffusion * rng.normal();
            pathSum += std::exp(logSpot);
        }
        const double average = pathSum / params.steps;
        const double payoff = std::max(average - params.strike, 0.0);
        localSum += payoff;
        localSumSq += payoff * payoff;
    }
    sumPayoff = localSum;
    sumPayoffSq = localSumSq;
}

PriceResult
MonteCarloPricer::combine(const AsianOptionParams& params,
                          std::uint64_t totalPaths, double sumPayoff,
                          double sumPayoffSq)
{
    TPC_CHECK(totalPaths > 0);
    const double n = static_cast<double>(totalPaths);
    const double mean = sumPayoff / n;
    const double variance =
        std::max(0.0, sumPayoffSq / n - mean * mean);
    const double discount =
        std::exp(-params.riskFreeRate * params.maturityYears);

    PriceResult result;
    result.price = discount * mean;
    result.standardError = discount * std::sqrt(variance / n);
    result.paths = totalPaths;
    return result;
}

PriceResult
MonteCarloPricer::price(const AsianOptionParams& params, std::uint64_t paths,
                        std::uint64_t seed) const
{
    double sum = 0.0;
    double sumSq = 0.0;
    priceChunk(params, paths, seed, sum, sumSq);
    return combine(params, paths, sum, sumSq);
}

PriceResult
MonteCarloPricer::priceEuropean(const AsianOptionParams& params,
                                std::uint64_t paths,
                                std::uint64_t seed) const
{
    TPC_CHECK(paths > 0);
    util::Rng rng(seed);
    // Terminal price can be sampled in one step: S_T = S0 exp((r - v^2/2)T
    // + v sqrt(T) Z).
    const double drift = (params.riskFreeRate -
                          0.5 * params.volatility * params.volatility) *
                         params.maturityYears;
    const double diffusion =
        params.volatility * std::sqrt(params.maturityYears);
    double sum = 0.0;
    double sumSq = 0.0;
    for (std::uint64_t p = 0; p < paths; ++p) {
        const double terminal =
            params.spot * std::exp(drift + diffusion * rng.normal());
        const double payoff = std::max(terminal - params.strike, 0.0);
        sum += payoff;
        sumSq += payoff * payoff;
    }
    return combine(params, paths, sum, sumSq);
}

double
standardNormalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double
blackScholesCall(const AsianOptionParams& params)
{
    TPC_CHECK(params.volatility > 0.0);
    TPC_CHECK(params.maturityYears > 0.0);
    const double sqrtT = std::sqrt(params.maturityYears);
    const double d1 =
        (std::log(params.spot / params.strike) +
         (params.riskFreeRate +
          0.5 * params.volatility * params.volatility) *
             params.maturityYears) /
        (params.volatility * sqrtT);
    const double d2 = d1 - params.volatility * sqrtT;
    const double discount =
        std::exp(-params.riskFreeRate * params.maturityYears);
    return params.spot * standardNormalCdf(d1) -
           params.strike * discount * standardNormalCdf(d2);
}

DemandEstimator::DemandEstimator(double nsPerStep) : nsPerStep_(nsPerStep)
{
    TPC_CHECK(nsPerStep > 0.0);
}

DemandEstimator
DemandEstimator::calibrate(const MonteCarloPricer& pricer,
                           const AsianOptionParams& params)
{
    using Clock = std::chrono::steady_clock;
    constexpr std::uint64_t kCalibrationPaths = 4000;
    // Warm-up run, then a timed run.
    double sum = 0.0;
    double sumSq = 0.0;
    pricer.priceChunk(params, kCalibrationPaths / 4, 1, sum, sumSq);
    const auto start = Clock::now();
    pricer.priceChunk(params, kCalibrationPaths, 2, sum, sumSq);
    const auto elapsedNs =
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count();
    const double steps =
        static_cast<double>(kCalibrationPaths) * params.steps;
    return DemandEstimator(elapsedNs / steps);
}

double
DemandEstimator::estimateMs(std::uint64_t paths, int steps) const
{
    return static_cast<double>(paths) * steps * nsPerStep_ / 1e6;
}

} // namespace tpc::finance
