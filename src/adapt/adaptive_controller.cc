#include "adapt/adaptive_controller.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/logging.h"

namespace tpc::adapt {

namespace {

/** Structural equality within float tolerance (no point shadowing or
 *  promoting a table identical to the active one). */
bool
tablesEqual(const core::TargetTable& a, const core::TargetTable& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const core::TargetEntry& ea = a.entries()[i];
        const core::TargetEntry& eb = b.entries()[i];
        const bool sameLoad =
            (std::isinf(ea.load) && std::isinf(eb.load)) ||
            ea.load == eb.load;
        if (!sameLoad || std::fabs(ea.targetMs - eb.targetMs) > 1e-6)
            return false;
    }
    return true;
}

/** Atomic-enough persist: write a temp file, rename over the target, so
 *  a concurrent loadFromFile never sees a half-written table. */
void
persistTable(const core::TargetTable& table, const std::string& path)
{
    const std::string tmp = path + ".tmp";
    table.saveToFile(tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        util::fatal("cannot rename promoted table into place: " + path);
}

} // namespace

const char*
adaptStateName(AdaptState state)
{
    switch (state) {
    case AdaptState::kShadowing:
        return "shadowing";
    case AdaptState::kHolding:
        return "holding";
    case AdaptState::kCooldown:
        return "cooldown";
    }
    return "unknown";
}

AdaptiveTableController::AdaptiveTableController(
    core::VersionedTargetTable& live, const policy::SpeedupModel& model,
    const AdaptOptions& options)
    : live_(live),
      model_(model),
      options_(options),
      refitOpts_(options.refit),
      bucketTable_(*live.snapshot().table)
{
    TPC_CHECK(options_.windowMs > 0.0);
    TPC_CHECK(options_.promoteAfterWindows >= 1);
    refitOpts_.windowMs = options_.windowMs;
    loads_.reserve(bucketTable_.size());
    for (const core::TargetEntry& entry : bucketTable_.entries())
        loads_.push_back(entry.load);
    window_.demandPerBucket.resize(loads_.size());

    if (options_.startThread) {
        thread_ = std::thread([this] {
            std::unique_lock<std::mutex> lock(threadMutex_);
            const auto interval =
                std::chrono::duration<double, std::milli>(
                    options_.windowMs);
            while (!stopRequested_) {
                if (cv_.wait_for(lock, interval,
                                 [this] { return stopRequested_; }))
                    break;
                lock.unlock();
                advanceWindow();
                lock.lock();
            }
        });
    }
}

AdaptiveTableController::~AdaptiveTableController()
{
    stop();
}

void
AdaptiveTableController::stop()
{
    {
        std::lock_guard<std::mutex> lock(threadMutex_);
        stopRequested_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

double
AdaptiveTableController::reconstructDemandMs(
    const obs::StageRecord& record) const
{
    // Sequential demand ~= measured service time x the speedup of the
    // degree the request actually ran at. The class profile is keyed by
    // sequential time, which is what we are solving for, so iterate the
    // class lookup twice (converges immediately for step-wise models).
    const double serviceMs =
        std::max(record.responseMs - record.queueMs, 0.01);
    const int degree = std::max(
        1, record.corrected ? record.maxDegree : record.initialDegree);
    double s = serviceMs;
    for (int i = 0; i < 2; ++i)
        s = serviceMs * model_.profileFor(s).speedup(degree);
    return s;
}

void
AdaptiveTableController::observe(const obs::StageRecord& record)
{
    const double demand = reconstructDemandMs(record);
    const std::size_t bucket = bucketTable_.bucketIndexFor(record.loadValue);
    std::lock_guard<std::mutex> lock(dataMutex_);
    window_.demandPerBucket[bucket].add(demand);
    window_.responseMs.add(std::max(record.responseMs, 0.01));
    ++window_.completions;
    if (record.targetMs > 0.0) {
        ++window_.targeted;
        if (record.responseMs > record.targetMs)
            ++window_.overTarget;
    }
}

void
AdaptiveTableController::advanceWindow()
{
    // 1. Close the current window.
    WindowData data;
    data.demandPerBucket.resize(loads_.size());
    {
        std::lock_guard<std::mutex> lock(dataMutex_);
        std::swap(data, window_);
        window_.demandPerBucket.clear();
        window_.demandPerBucket.resize(loads_.size());
    }
    const double p99 = data.responseMs.percentile(0.99);
    const double missPct =
        data.targeted > 0
            ? 100.0 * static_cast<double>(data.overTarget) /
                  static_cast<double>(data.targeted)
            : 0.0;

    std::vector<core::LoadWindowObservation> observed;
    for (std::size_t i = 0; i < loads_.size(); ++i) {
        if (data.demandPerBucket[i].count() == 0)
            continue;
        core::LoadWindowObservation obs;
        obs.load = loads_[i];
        obs.demandMs = std::move(data.demandPerBucket[i]);
        observed.push_back(std::move(obs));
    }

    // 2. One step of the shadow -> promote -> rollback state machine.
    std::lock_guard<std::mutex> lock(stateMutex_);
    history_.push_back(observed);
    while (static_cast<int>(history_.size()) >
           std::max(1, options_.refitHistoryWindows))
        history_.pop_front();

    ++stats_.windowsEvaluated;
    stats_.lastWindowCompletions = data.completions;
    stats_.lastWindowP99Ms = p99;
    stats_.lastWindowMissPct = missPct;

    const core::TableSnapshot active = live_.snapshot();
    const bool enoughSamples = data.completions >= options_.minWindowSamples;

    switch (state_) {
    case AdaptState::kHolding: {
        // Guardrail: actual p99 under the promoted table vs. the
        // pre-promotion baseline.
        if (enoughSamples &&
            p99 > rollbackBaselineP99Ms_ * options_.rollbackP99Factor &&
            lastKnownGood_) {
            live_.publish(*lastKnownGood_, lastKnownGoodSource_);
            ++stats_.rollbacks;
            candidate_.reset();
            consecutiveWins_ = 0;
            state_ = AdaptState::kCooldown;
            cooldownLeft_ = options_.cooldownWindows;
            break;
        }
        if (--guardLeft_ <= 0) {
            // Promotion survived its probation: the promoted table is
            // the new last-known-good.
            lastKnownGood_ = *active.table;
            lastKnownGoodSource_ = active.source;
            state_ = AdaptState::kShadowing;
        }
        break;
    }
    case AdaptState::kCooldown: {
        if (--cooldownLeft_ <= 0)
            state_ = AdaptState::kShadowing;
        break;
    }
    case AdaptState::kShadowing: {
        if (!enoughSamples)
            break;
        // Shadow evaluation: score both tables on the live window with
        // the same analytic MEASURETAIL the re-fit optimizes. Serving
        // is untouched — only live_.publish below changes anything.
        stats_.activeScore =
            core::scoreTableOnWindows(*active.table, observed, model_,
                                      refitOpts_);
        if (candidate_) {
            stats_.candidateScore = core::scoreTableOnWindows(
                *candidate_, observed, model_, refitOpts_);
            if (stats_.candidateScore <
                stats_.activeScore * (1.0 - options_.hysteresis))
                ++consecutiveWins_;
            else
                consecutiveWins_ = 0;
            if (consecutiveWins_ >= options_.promoteAfterWindows) {
                // Promote: remember the incumbent for rollback, swap.
                rollbackBaselineP99Ms_ =
                    ewmaP99Ms_ > 0.0 ? ewmaP99Ms_ : p99;
                lastKnownGood_ = *active.table;
                lastKnownGoodSource_ = active.source;
                live_.publish(*candidate_, core::TableSource::kAdapted);
                if (!options_.promotedTablePath.empty())
                    persistTable(*candidate_, options_.promotedTablePath);
                ++stats_.promotions;
                candidate_.reset();
                consecutiveWins_ = 0;
                guardLeft_ = options_.guardWindows;
                state_ = AdaptState::kHolding;
                break;
            }
        }
        // Re-fit the next candidate from recent windows (merged so one
        // thin window does not swing the fit).
        std::vector<core::LoadWindowObservation> merged;
        merged.reserve(loads_.size());
        for (std::size_t i = 0; i < loads_.size(); ++i) {
            core::LoadWindowObservation obs;
            obs.load = loads_[i];
            for (const auto& windowObs : history_)
                for (const auto& bucket : windowObs)
                    if (bucket.load == obs.load ||
                        (std::isinf(bucket.load) && std::isinf(obs.load)))
                        obs.demandMs.merge(bucket.demandMs);
            if (obs.demandMs.count() > 0)
                merged.push_back(std::move(obs));
        }
        core::HistogramRefitOptions fitOpts = refitOpts_;
        fitOpts.windowMs =
            options_.windowMs * static_cast<double>(history_.size());
        std::optional<core::TargetTable> next = core::refitTargetTable(
            merged, loads_, model_, fitOpts, options_.builder);
        if (next && !tablesEqual(*next, *active.table)) {
            if (!candidate_ || !tablesEqual(*next, *candidate_))
                ++stats_.refits;
            candidate_ = std::move(next);
        } else {
            // Nothing to fit, or the fit agrees with the incumbent.
            candidate_.reset();
            consecutiveWins_ = 0;
        }
        break;
    }
    }

    if (data.completions > 0)
        ewmaP99Ms_ =
            ewmaP99Ms_ > 0.0 ? 0.7 * ewmaP99Ms_ + 0.3 * p99 : p99;

    stats_.state = state_;
    stats_.hasCandidate = candidate_.has_value();
    stats_.consecutiveWins = consecutiveWins_;
    publishMetricsLocked();
}

void
AdaptiveTableController::publishMetricsLocked()
{
    if (!metrics_)
        return;
    const core::TableSnapshot snap = live_.snapshot();
    metrics_->counter("adapt_windows").inc();
    metrics_->gauge("adapt_table_version")
        .set(static_cast<double>(snap.version));
    metrics_->gauge("adapt_table_adapted")
        .set(snap.source == core::TableSource::kAdapted ? 1.0 : 0.0);
    metrics_->gauge("adapt_state").set(static_cast<double>(state_));
    metrics_->gauge("adapt_shadow_active_score").set(stats_.activeScore);
    metrics_->gauge("adapt_shadow_candidate_score")
        .set(stats_.candidateScore);
    metrics_->gauge("adapt_window_p99_ms").set(stats_.lastWindowP99Ms);
    metrics_->gauge("adapt_window_miss_pct")
        .set(stats_.lastWindowMissPct);
    // Cumulative event counters (the CSV exporter shows their
    // per-window deltas).
    auto syncCounter = [this](const char* name, std::uint64_t total) {
        obs::Counter& c = metrics_->counter(name);
        if (total > c.value())
            c.inc(total - c.value());
    };
    syncCounter("adapt_refits", stats_.refits);
    syncCounter("adapt_promotions", stats_.promotions);
    syncCounter("adapt_rollbacks", stats_.rollbacks);
}

AdaptationStats
AdaptiveTableController::stats() const
{
    const core::TableSnapshot snap = live_.snapshot();
    std::lock_guard<std::mutex> lock(stateMutex_);
    AdaptationStats out = stats_;
    out.tableVersion = snap.version;
    out.tableSource = snap.source;
    return out;
}

void
AdaptiveTableController::attachMetrics(obs::MetricsRegistry* metrics)
{
    std::lock_guard<std::mutex> lock(stateMutex_);
    metrics_ = metrics;
}

} // namespace tpc::adapt
