/**
 * @file
 * Closed-loop target-table adaptation: shadow-evaluate, promote, guard.
 *
 * The paper builds the load -> target table offline (Algorithm 1) and
 * freezes it; production load drifts by hour and by query mix, so a
 * frozen table either over-parallelizes (wasting workers, inflating
 * queueing) or under-parallelizes (missing the tail target). The
 * AdaptiveTableController closes the loop from live completions back
 * into the table:
 *
 *   observe() -- every completion (StageRecord, incl. the load-metric
 *   value the policy saw at dispatch) lands in the current observation
 *   window: a sequential-demand histogram per load bucket plus actual
 *   p99/miss accounting.
 *
 *   advanceWindow() -- at each window boundary (background thread, same
 *   pattern as obs::StatsSampler, or pumped manually by deterministic
 *   benches) the controller re-fits a candidate table from recent
 *   windows (core::refitTargetTable), scores candidate and active table
 *   on the live window with the same analytic MEASURETAIL (shadow
 *   evaluation: serving is never affected), and promotes the candidate
 *   via core::VersionedTargetTable::publish only after it beats the
 *   active table by a hysteresis margin for K consecutive windows.
 *
 *   Guardrail -- for the first windows after a promotion the controller
 *   compares the *actual* windowed p99 against the pre-promotion
 *   baseline and demotes back to the last-known-good table when it
 *   regressed, then cools down before re-fitting again.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/table_builder.h"
#include "core/versioned_table.h"
#include "obs/metrics.h"
#include "obs/stage_stats.h"
#include "policy/speedup_profile.h"
#include "stats/histogram.h"

namespace tpc::adapt {

/** Controls for the adaptation loop. */
struct AdaptOptions
{
    /** Observation-window length (ms) for the background thread. */
    double windowMs = 1000.0;
    /** Consecutive shadow wins required before promotion (K). */
    int promoteAfterWindows = 3;
    /** Candidate must beat the active score by this fraction to "win". */
    double hysteresis = 0.05;
    /** Windows with fewer completions than this are not evaluated. */
    std::uint64_t minWindowSamples = 64;
    /** Post-promotion p99 above baseline x this factor triggers rollback. */
    double rollbackP99Factor = 1.15;
    /** Windows the guardrail watches after each promotion. */
    int guardWindows = 3;
    /** Windows to sit out after a rollback before re-fitting. */
    int cooldownWindows = 5;
    /** Recent windows merged as the re-fit's sample set. */
    int refitHistoryWindows = 4;
    /** Algorithm 1 parameters for the re-fit (coarser than offline). */
    core::TableBuilderParams builder{4.0, 200, 400.0};
    /** Analytic MEASURETAIL parameters (capacity model, quantiles). */
    core::HistogramRefitOptions refit;
    /** Spawn the background window thread; false = manual pumping. */
    bool startThread = true;
    /** When non-empty, every promoted table is written here (atomic
     *  tmp+rename) in the saveToFile format, for distribution to the
     *  fan-out aggregator. */
    std::string promotedTablePath;
};

/** Where the controller sits in the shadow->promote->rollback machine. */
enum class AdaptState : int
{
    kShadowing = 0, ///< Scoring a candidate against the active table.
    kHolding = 1,   ///< Recently promoted; guardrail watching p99.
    kCooldown = 2,  ///< Rolled back; waiting before the next re-fit.
};

const char* adaptStateName(AdaptState state);

/** Point-in-time adaptation state for /statsz and tests. */
struct AdaptationStats
{
    std::uint64_t tableVersion = 0;
    core::TableSource tableSource = core::TableSource::kOffline;
    AdaptState state = AdaptState::kShadowing;
    bool hasCandidate = false;
    /** Shadow scores from the last evaluated window (lower is better). */
    double activeScore = 0.0;
    double candidateScore = 0.0;
    int consecutiveWins = 0;
    std::uint64_t windowsEvaluated = 0;
    std::uint64_t refits = 0;
    std::uint64_t promotions = 0;
    std::uint64_t rollbacks = 0;
    /** Actuals from the last closed window. */
    std::uint64_t lastWindowCompletions = 0;
    double lastWindowP99Ms = 0.0;
    /** Percent of targeted completions over their target E. */
    double lastWindowMissPct = 0.0;
};

/**
 * The closed-loop adapter. Thread-safe: observe() may be called from
 * any number of completion threads; advanceWindow() runs on the
 * background thread (or the caller's, in manual mode); stats() from
 * anywhere. Publishes only through the VersionedTargetTable, which
 * serving policies consume RCU-style — shadow evaluation never touches
 * serving state.
 */
class AdaptiveTableController
{
  public:
    /**
     * @param live  The versioned table serving policies are attached to;
     *              must outlive the controller. Its current snapshot
     *              defines the load-bucket bounds every re-fit keeps.
     * @param model Speedup model shared with the serving policy.
     */
    AdaptiveTableController(core::VersionedTargetTable& live,
                            const policy::SpeedupModel& model,
                            const AdaptOptions& options = {});
    ~AdaptiveTableController();

    AdaptiveTableController(const AdaptiveTableController&) = delete;
    AdaptiveTableController& operator=(const AdaptiveTableController&) =
        delete;

    /** Feeds one completion into the current observation window. */
    void observe(const obs::StageRecord& record);

    /**
     * Closes the current window and runs one step of the state machine:
     * guardrail check, shadow scoring, possible promotion or rollback,
     * and the next candidate re-fit. Called by the background thread
     * every windowMs; deterministic benches call it directly.
     */
    void advanceWindow();

    /** Snapshot of the adaptation state. */
    AdaptationStats stats() const;

    /** Registers adaptation counters/gauges on a metrics registry so
     *  the windowed CSV gains an adaptation lane. */
    void attachMetrics(obs::MetricsRegistry* metrics);

    /** Stops the background thread (idempotent; destructor calls it). */
    void stop();

  private:
    struct WindowData
    {
        std::vector<stats::LogHistogram> demandPerBucket;
        stats::LogHistogram responseMs;
        std::uint64_t completions = 0;
        std::uint64_t targeted = 0;
        std::uint64_t overTarget = 0;
    };

    double reconstructDemandMs(const obs::StageRecord& record) const;
    void publishMetricsLocked();

    core::VersionedTargetTable& live_;
    const policy::SpeedupModel& model_;
    const AdaptOptions options_;
    /** options_.refit with windowMs forced to the observation window. */
    core::HistogramRefitOptions refitOpts_;

    /** Load-bucket bounds (fixed across re-fits) and their lookup table. */
    std::vector<double> loads_;
    core::TargetTable bucketTable_;

    /** Current-window accumulators (hot path). */
    mutable std::mutex dataMutex_;
    WindowData window_;

    /** State machine + published stats (advanceWindow/stats). */
    mutable std::mutex stateMutex_;
    AdaptState state_ = AdaptState::kShadowing;
    std::optional<core::TargetTable> candidate_;
    std::optional<core::TargetTable> lastKnownGood_;
    core::TableSource lastKnownGoodSource_ = core::TableSource::kOffline;
    int consecutiveWins_ = 0;
    int guardLeft_ = 0;
    int cooldownLeft_ = 0;
    double ewmaP99Ms_ = 0.0;
    double rollbackBaselineP99Ms_ = 0.0;
    AdaptationStats stats_;
    std::deque<std::vector<core::LoadWindowObservation>> history_;

    obs::MetricsRegistry* metrics_ = nullptr;

    /** Background thread (StatsSampler pattern). */
    std::mutex threadMutex_;
    std::condition_variable cv_;
    bool stopRequested_ = false;
    std::thread thread_;
};

} // namespace tpc::adapt
