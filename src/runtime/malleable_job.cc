#include "runtime/malleable_job.h"

#include "util/logging.h"

namespace tpc::runtime {

MalleableJob::MalleableJob(int numTasks, TaskFn fn)
    : numTasks_(numTasks), fn_(std::move(fn))
{
    TPC_CHECK(numTasks >= 1);
    TPC_CHECK(fn_ != nullptr);
}

void
MalleableJob::runWorker()
{
    joinedWorkers_.fetch_add(1, std::memory_order_relaxed);
    activeWorkers_.fetch_add(1, std::memory_order_relaxed);
    while (true) {
        const int task = nextTask_.fetch_add(1, std::memory_order_relaxed);
        if (task >= numTasks_)
            break;
        fn_(task);
        const int completed =
            completedTasks_.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (completed == numTasks_) {
            std::lock_guard<std::mutex> lock(doneMutex_);
            done_ = true;
            doneCv_.notify_all();
        }
    }
    activeWorkers_.fetch_sub(1, std::memory_order_relaxed);
}

void
MalleableJob::wait()
{
    std::unique_lock<std::mutex> lock(doneMutex_);
    doneCv_.wait(lock, [this] { return done_; });
}

bool
MalleableJob::finished() const
{
    return completedTasks_.load(std::memory_order_acquire) == numTasks_;
}

} // namespace tpc::runtime
