#include "runtime/parallel_for.h"

#include <memory>

#include "runtime/malleable_job.h"
#include "runtime/worker_pool.h"
#include "util/logging.h"

namespace tpc::runtime {

void
parallelFor(WorkerPool& pool, int degree, int numTasks,
            const std::function<void(int)>& body)
{
    TPC_CHECK(degree >= 1);
    TPC_CHECK(numTasks >= 1);
    if (degree == 1 || numTasks == 1) {
        for (int i = 0; i < numTasks; ++i)
            body(i);
        return;
    }
    // Shared ownership so helpers posted to the pool stay valid even if
    // they start after the caller finished waiting.
    auto job = std::make_shared<MalleableJob>(
        numTasks, [&body](int task) { body(task); });
    for (int i = 0; i < degree - 1; ++i)
        pool.post([job] { job->runWorker(); });
    job->runWorker();
    job->wait();
}

} // namespace tpc::runtime
