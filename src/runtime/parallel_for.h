/**
 * @file
 * Fixed-degree fork/join helper built on MalleableJob.
 *
 * Used by the Figure 2 speedup measurement and the finance server: run a
 * chunked loop body with exactly @c degree participating threads (the
 * calling thread is one of them) and return when all chunks complete.
 */
#pragma once

#include <functional>

namespace tpc::runtime {

class WorkerPool;

/**
 * Executes @p numTasks chunk bodies with @p degree threads.
 *
 * @param pool     Pool supplying the extra degree-1 workers.
 * @param degree   Total participating threads, including the caller (>= 1).
 * @param numTasks Number of chunks (>= 1).
 * @param body     Chunk body; called once per index in [0, numTasks).
 */
void parallelFor(WorkerPool& pool, int degree, int numTasks,
                 const std::function<void(int)>& body);

} // namespace tpc::runtime
