/**
 * @file
 * A malleable parallel job: a pool of tasks executed by a varying number
 * of workers.
 *
 * This is the intra-request parallelism mechanism the paper builds on
 * (Jeon et al., EuroSys 2013; Haque et al., ASPLOS 2015): request work is
 * partitioned into small tasks forming a task pool, worker threads grab
 * tasks until the pool drains, and the scheduler may add workers *while
 * the job runs* — which is exactly what TPC's dynamic correction does.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

namespace tpc::runtime {

/**
 * A job made of @c numTasks independent tasks, identified by index.
 *
 * Thread-safe: any number of workers may call runWorker concurrently, and
 * more workers may join at any time. Each task executes exactly once.
 */
class MalleableJob
{
  public:
    /** Task body; receives the task index. */
    using TaskFn = std::function<void(int taskIndex)>;

    /**
     * @param numTasks Number of tasks (>= 1).
     * @param fn       Task body; must be safe to call concurrently for
     *                 distinct indices.
     */
    MalleableJob(int numTasks, TaskFn fn);

    MalleableJob(const MalleableJob&) = delete;
    MalleableJob& operator=(const MalleableJob&) = delete;

    /**
     * Participates in the job: grabs and runs tasks until the pool is
     * empty, then returns. Increments the active-worker count while
     * running. Safe to call after the job finished (returns immediately).
     */
    void runWorker();

    /** Blocks until every task has completed. */
    void wait();

    /** True once every task has completed. */
    bool finished() const;

    /** Number of workers currently inside runWorker(). */
    int activeWorkers() const
    {
        return activeWorkers_.load(std::memory_order_relaxed);
    }

    /** Total workers that ever participated (for tests/telemetry). */
    int totalWorkersJoined() const
    {
        return joinedWorkers_.load(std::memory_order_relaxed);
    }

    int taskCount() const { return numTasks_; }

  private:
    const int numTasks_;
    TaskFn fn_;
    std::atomic<int> nextTask_{0};
    std::atomic<int> completedTasks_{0};
    std::atomic<int> activeWorkers_{0};
    std::atomic<int> joinedWorkers_{0};

    std::mutex doneMutex_;
    std::condition_variable doneCv_;
    bool done_ = false;
};

} // namespace tpc::runtime
