/**
 * @file
 * Fixed-size worker-thread pool.
 *
 * Models the ISN's pool of worker threads (28 in the paper's setup): a
 * request occupies one worker for sequential execution, or several for
 * parallel execution; the number of idle workers is the "available
 * resources" signal TPC's dynamic correction consumes.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tpc::runtime {

/** A pool of worker threads executing posted closures FIFO. */
class WorkerPool
{
  public:
    /** Spawns @p numThreads workers immediately. */
    explicit WorkerPool(int numThreads);

    /** Drains outstanding work, then joins all workers. */
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /** Enqueues a closure for execution by any worker. */
    void post(std::function<void()> fn);

    /** Number of workers not currently running a closure. */
    int idleWorkers() const
    {
        return size_ - busyWorkers_.load(std::memory_order_relaxed);
    }

    /** Number of workers currently running a closure. */
    int busyWorkers() const
    {
        return busyWorkers_.load(std::memory_order_relaxed);
    }

    /** Total worker threads. */
    int size() const { return size_; }

    /** Closures queued but not yet started. */
    int pendingTasks() const;

    /**
     * Per-worker occupancy timeline: cumulative milliseconds each worker
     * has spent running closures since construction. Index == worker
     * number; compare across workers to spot load imbalance and against
     * wall time for utilization.
     */
    std::vector<double> workerBusyMs() const;

  private:
    void workerLoop(int workerIndex);

    const int size_;
    std::vector<std::thread> threads_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    std::atomic<int> busyWorkers_{0};
    /** Cumulative busy time per worker, in nanoseconds. unique_ptr so
     *  the vector stays movable-free and addresses stable. */
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> busyNs_;
    bool stopping_ = false;
};

} // namespace tpc::runtime
