#include "runtime/worker_pool.h"

#include <chrono>
#include <string>

#include "obs/prof/cpu_profiler.h"
#include "util/logging.h"

namespace tpc::runtime {

WorkerPool::WorkerPool(int numThreads) : size_(numThreads)
{
    TPC_CHECK(numThreads >= 1);
    threads_.reserve(static_cast<std::size_t>(numThreads));
    busyNs_.reserve(static_cast<std::size_t>(numThreads));
    for (int i = 0; i < numThreads; ++i)
        busyNs_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    for (int i = 0; i < numThreads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_)
        t.join();
}

void
WorkerPool::post(std::function<void()> fn)
{
    TPC_CHECK(fn != nullptr);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TPC_CHECK_MSG(!stopping_, "post after shutdown");
        queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
}

int
WorkerPool::pendingTasks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(queue_.size());
}

std::vector<double>
WorkerPool::workerBusyMs() const
{
    std::vector<double> out;
    out.reserve(busyNs_.size());
    for (const auto& ns : busyNs_)
        out.push_back(static_cast<double>(
                          ns->load(std::memory_order_relaxed)) /
                      1e6);
    return out;
}

void
WorkerPool::workerLoop(int workerIndex)
{
    // Sampled as "worker-N" whenever the process profiler is running;
    // an idle worker (blocked on cv_) accrues no CPU time and no
    // samples.
    obs::prof::ThreadProfileScope profileScope(
        "worker-" + std::to_string(workerIndex));
    std::atomic<std::uint64_t>& busyNs = *busyNs_[workerIndex];
    while (true) {
        std::function<void()> fn;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                // stopping_ must be set; drain-then-exit semantics.
                return;
            }
            fn = std::move(queue_.front());
            queue_.pop_front();
        }
        busyWorkers_.fetch_add(1, std::memory_order_relaxed);
        const auto start = std::chrono::steady_clock::now();
        fn();
        const auto elapsed = std::chrono::steady_clock::now() - start;
        busyNs.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count()),
            std::memory_order_relaxed);
        busyWorkers_.fetch_sub(1, std::memory_order_relaxed);
    }
}

} // namespace tpc::runtime
