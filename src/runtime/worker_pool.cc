#include "runtime/worker_pool.h"

#include "util/logging.h"

namespace tpc::runtime {

WorkerPool::WorkerPool(int numThreads) : size_(numThreads)
{
    TPC_CHECK(numThreads >= 1);
    threads_.reserve(static_cast<std::size_t>(numThreads));
    for (int i = 0; i < numThreads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_)
        t.join();
}

void
WorkerPool::post(std::function<void()> fn)
{
    TPC_CHECK(fn != nullptr);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TPC_CHECK_MSG(!stopping_, "post after shutdown");
        queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
}

int
WorkerPool::pendingTasks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(queue_.size());
}

void
WorkerPool::workerLoop()
{
    while (true) {
        std::function<void()> fn;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                // stopping_ must be set; drain-then-exit semantics.
                return;
            }
            fn = std::move(queue_.front());
            queue_.pop_front();
        }
        busyWorkers_.fetch_add(1, std::memory_order_relaxed);
        fn();
        busyWorkers_.fetch_sub(1, std::memory_order_relaxed);
    }
}

} // namespace tpc::runtime
