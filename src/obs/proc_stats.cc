#include "obs/proc_stats.h"

#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"

#if defined(__linux__)
#include <dirent.h>
#include <unistd.h>
#endif

namespace tpc::obs {

ProcStats sampleProcStats()
{
    ProcStats out;
#if defined(__linux__)
    // /proc/self/stat: fields after the parenthesized comm (which may
    // contain spaces) are whitespace-delimited; utime/stime are fields
    // 14/15, num_threads 20, vsize 23, rss 24 (1-based).
    std::ifstream stat("/proc/self/stat");
    if (!stat)
        return out;
    std::string line;
    std::getline(stat, line);
    const std::size_t close = line.rfind(')');
    if (close == std::string::npos)
        return out;
    std::istringstream rest(line.substr(close + 1));
    std::string field;
    long clockTicks = ::sysconf(_SC_CLK_TCK);
    if (clockTicks <= 0)
        clockTicks = 100;
    const long pageSize = ::sysconf(_SC_PAGESIZE);
    // After ")": state is field 3; utime is field 14 → index 11 here.
    for (int i = 3; rest >> field; ++i) {
        switch (i) {
        case 14: out.utimeSec = std::stod(field) / clockTicks; break;
        case 15: out.stimeSec = std::stod(field) / clockTicks; break;
        case 20: out.threads = std::stoi(field); break;
        case 23: out.vsizeBytes = std::stod(field); break;
        case 24:
            out.rssBytes = std::stod(field) * static_cast<double>(pageSize);
            break;
        default: break;
        }
        if (i >= 24)
            break;
    }

    std::ifstream status("/proc/self/status");
    while (status && std::getline(status, line)) {
        if (line.rfind("voluntary_ctxt_switches:", 0) == 0)
            out.voluntaryCtxSwitches =
                std::stoull(line.substr(line.find(':') + 1));
        else if (line.rfind("nonvoluntary_ctxt_switches:", 0) == 0)
            out.involuntaryCtxSwitches =
                std::stoull(line.substr(line.find(':') + 1));
    }

    if (DIR* dir = ::opendir("/proc/self/fd")) {
        int fds = 0;
        while (struct dirent* entry = ::readdir(dir)) {
            if (entry->d_name[0] != '.')
                ++fds;
        }
        ::closedir(dir);
        out.openFds = fds - 1; // exclude the opendir fd itself
    }

    out.ok = true;
#endif
    return out;
}

void publishProcStats(MetricsRegistry& metrics, const ProcStats& sample)
{
    if (!sample.ok)
        return;
    metrics.gauge("proc_rss_bytes").set(sample.rssBytes);
    metrics.gauge("proc_vsize_bytes").set(sample.vsizeBytes);
    metrics.gauge("proc_utime_sec").set(sample.utimeSec);
    metrics.gauge("proc_stime_sec").set(sample.stimeSec);
    metrics.gauge("proc_ctx_voluntary")
        .set(static_cast<double>(sample.voluntaryCtxSwitches));
    metrics.gauge("proc_ctx_involuntary")
        .set(static_cast<double>(sample.involuntaryCtxSwitches));
    metrics.gauge("proc_open_fds").set(sample.openFds);
    metrics.gauge("proc_threads").set(sample.threads);
}

} // namespace tpc::obs
