#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace tpc::obs {

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(double minValue, double maxValue, double growthFactor)
    : window_(minValue, maxValue, growthFactor),
      cumulative_(minValue, maxValue, growthFactor)
{
}

void
Histogram::add(double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    window_.add(value);
    cumulative_.add(value);
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cumulative_.count();
}

stats::LatencySummary
Histogram::summarize(const stats::LogHistogram& h)
{
    stats::LatencySummary s;
    s.count = h.count();
    if (s.count == 0)
        return s;
    s.mean = h.mean();
    s.p50 = h.percentile(0.50);
    s.p90 = h.percentile(0.90);
    s.p95 = h.percentile(0.95);
    s.p99 = h.percentile(0.99);
    s.p999 = h.percentile(0.999);
    s.max = h.percentile(1.0);
    return s;
}

stats::LatencySummary
Histogram::cumulativeSummary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return summarize(cumulative_);
}

stats::LatencySummary
Histogram::takeWindowSummary()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const stats::LatencySummary s = summarize(window_);
    window_.clear();
    return s;
}

// --- MetricsRegistry --------------------------------------------------------

template <typename T, typename... Args>
T&
MetricsRegistry::getOrCreate(NamedList<T>& list, const std::string& name,
                             Args&&... args)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [existing, metric] : list) {
        if (existing == name)
            return *metric;
    }
    list.emplace_back(name, std::make_unique<T>(std::forward<Args>(args)...));
    return *list.back().second;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    return getOrCreate(counters_, name);
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    return getOrCreate(gauges_, name);
}

Histogram&
MetricsRegistry::histogram(const std::string& name, double minValue,
                           double maxValue, double growthFactor)
{
    return getOrCreate(histograms_, name, minValue, maxValue, growthFactor);
}

namespace {

template <typename List>
std::vector<std::string>
namesOf(const List& list)
{
    std::vector<std::string> names;
    names.reserve(list.size());
    for (const auto& [name, metric] : list)
        names.push_back(name);
    return names;
}

} // namespace

std::vector<std::string>
MetricsRegistry::counterNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return namesOf(counters_);
}

std::vector<std::string>
MetricsRegistry::gaugeNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return namesOf(gauges_);
}

std::vector<std::string>
MetricsRegistry::histogramNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return namesOf(histograms_);
}

// --- MetricsCsvExporter -----------------------------------------------------

MetricsCsvExporter::MetricsCsvExporter(MetricsRegistry& registry,
                                       const std::string& path)
    : registry_(registry), csv_(path)
{
}

void
MetricsCsvExporter::writeHeader()
{
    counterNames_ = registry_.counterNames();
    gaugeNames_ = registry_.gaugeNames();
    histogramNames_ = registry_.histogramNames();

    std::vector<std::string> header = {"window_start_ms", "window_end_ms"};
    for (const auto& name : counterNames_)
        header.push_back(name);
    for (const auto& name : gaugeNames_)
        header.push_back(name);
    for (const auto& name : histogramNames_) {
        const auto cells = stats::LatencySummary::csvHeader(name + "_");
        header.insert(header.end(), cells.begin(), cells.end());
    }
    csv_.writeRow(header);
    headerWritten_ = true;
}

void
MetricsCsvExporter::writeWindow(double windowStartMs, double windowEndMs)
{
    if (!headerWritten_)
        writeHeader();

    char buf[64];
    std::vector<std::string> row;
    std::snprintf(buf, sizeof(buf), "%.6g", windowStartMs);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.6g", windowEndMs);
    row.emplace_back(buf);

    for (const auto& name : counterNames_) {
        const std::uint64_t value = registry_.counter(name).value();
        std::uint64_t& last = lastCounterValues_[name];
        row.push_back(std::to_string(value - last));
        last = value;
    }
    for (const auto& name : gaugeNames_) {
        std::snprintf(buf, sizeof(buf), "%.6g",
                      registry_.gauge(name).value());
        row.emplace_back(buf);
    }
    for (const auto& name : histogramNames_) {
        const auto cells =
            registry_.histogram(name).takeWindowSummary().toCsvRow();
        row.insert(row.end(), cells.begin(), cells.end());
    }
    csv_.writeRow(row);
    // Snapshots should be on disk as soon as they are taken: the file is
    // a live progress feed for long runs and must survive a crash.
    csv_.flush();
}

} // namespace tpc::obs
