/**
 * @file
 * Always-on span recording with tail-based retention, plus the /tracez
 * Chrome-trace JSON renderer and its cross-process assembler.
 *
 * Recording path (hot): record() copies the span into the shard picked
 * by the calling thread's id — one mutex per shard, bounded ring, no
 * allocation beyond the ring's steady state. Spans sit in the rings
 * anonymously until their request finishes.
 *
 * Retention path (rare): finishTrace() runs once per completed request
 * and decides whether the request was *interesting*: over its class
 * target, or picked by the 1-in-N uniform baseline sample (so on-target
 * shapes stay observable for comparison). Only then are the trace's
 * spans swept out of the rings into the bounded retention buffer;
 * everything else simply ages out of the rings as new spans overwrite
 * old ones. This is what keeps always-on tracing cheap: the common case
 * (on target) costs a ring write per span and one counter bump per
 * request.
 *
 * Export: renderTracez() serializes the retained traces as Chrome-trace
 * JSON ("X" slice events carrying the span identity in args).
 * parseTracezSpans() reads that JSON back, and assembleChromeTrace()
 * merges spans fetched from several processes — aggregator plus shards —
 * into one timeline, stitched by traceId. Span times are wall-clock ms
 * (span.h), so no cross-process clock negotiation is needed.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/span.h"

namespace tpc::obs {

/** Static configuration of a SpanCollector. */
struct SpanCollectorConfig
{
    /** Per-shard ring capacity; oldest spans are overwritten when a
     *  request's spans were not retained before the ring wraps. */
    std::size_t shardCapacity = 4096;
    /** Completed traces kept for /tracez; oldest evicted first. */
    std::size_t retainedCapacity = 64;
    /** Keep 1 in N on-target traces as a baseline sample; 0 disables
     *  the baseline (only over-target traces are retained). */
    std::uint32_t baselineSampleEvery = 16;
    /** Retain every finished trace (measurement mode for the overhead
     *  bench; never the serving default). */
    bool retainAll = false;
    /** Process id stamped on every span (the Chrome-trace pid). */
    std::int32_t serverId = 0;
    /** Process role stamped on every span ("loadgen", "aggregator",
     *  "shard", ...). */
    std::string role = "server";
};

/** One completed request's span tree, promoted out of the rings. */
struct RetainedTrace
{
    std::uint64_t traceId = 0;
    std::uint32_t cls = 0;
    /** Root response time and the target it was judged against. */
    double responseMs = 0.0;
    double targetMs = 0.0;
    /** Why it was kept. */
    bool overTarget = false;
    bool baseline = false;
    /** Spans ordered by startMs. */
    std::vector<Span> spans;
};

/** Thread-sharded span recorder with tail-based retention. */
class SpanCollector
{
  public:
    /** @param shardCount Independent rings (>= 1); size to the number of
     *                    recording threads to avoid contention. */
    explicit SpanCollector(std::size_t shardCount = 1,
                           SpanCollectorConfig config = {});

    SpanCollector(const SpanCollector&) = delete;
    SpanCollector& operator=(const SpanCollector&) = delete;

    /** Toggles recording; record()/finishTrace() while disabled drop. */
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /** Fresh process-unique span id (also usable as a traceId). */
    std::uint64_t newSpanId();

    /** Records a completed span into the calling thread's shard ring.
     *  The collector stamps serverId and role; spans with traceId 0 are
     *  dropped. */
    void record(Span span);

    /**
     * Completes a trace: decides retention from @p responseMs vs
     * @p targetMs (over target ⇒ keep; otherwise keep only the 1-in-N
     * baseline sample), and on retention sweeps the trace's spans from
     * every shard ring into the retention buffer. Call after the root
     * span was record()ed.
     */
    void finishTrace(std::uint64_t traceId, std::uint32_t cls,
                     double responseMs, double targetMs);

    /** Retained traces, oldest first (snapshot). */
    std::vector<RetainedTrace> retained() const;

    /** Chrome-trace JSON of the most recent @p maxTraces retained
     *  traces (all when 0). */
    std::string renderTracez(std::size_t maxTraces = 0) const;

    /** Completed requests seen by finishTrace(). */
    std::uint64_t finishedTraces() const
    {
        return finished_.load(std::memory_order_relaxed);
    }

    /** Traces promoted to the retention buffer (incl. later-evicted). */
    std::uint64_t retainedTraces() const
    {
        return retainedCount_.load(std::memory_order_relaxed);
    }

    /** Retained because they exceeded their target. */
    std::uint64_t overTargetRetained() const
    {
        return overTarget_.load(std::memory_order_relaxed);
    }

    /** Retained by the uniform baseline sample. */
    std::uint64_t baselineRetained() const
    {
        return baseline_.load(std::memory_order_relaxed);
    }

    /** Spans overwritten in a ring before their trace finished. */
    std::uint64_t droppedSpans() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    std::size_t shardCount() const { return shards_.size(); }

    const SpanCollectorConfig& config() const { return config_; }

    /** Drops all buffered spans and retained traces (counters keep). */
    void clear();

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        /** Bounded ring: push_back, pop_front on overflow. */
        std::deque<Span> ring;
    };

    Shard& shardForThisThread();

    SpanCollectorConfig config_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<bool> enabled_{true};
    std::atomic<std::uint64_t> nextSpanId_{1};
    std::atomic<std::uint64_t> finished_{0};
    std::atomic<std::uint64_t> retainedCount_{0};
    std::atomic<std::uint64_t> overTarget_{0};
    std::atomic<std::uint64_t> baseline_{0};
    std::atomic<std::uint64_t> dropped_{0};

    mutable std::mutex retainedMutex_;
    std::deque<RetainedTrace> retained_;
};

/**
 * Serializes spans as Chrome-trace JSON: one "X" slice per span with
 * pid = serverId, greedy lane packing per process so overlapping spans
 * (a hedge race) land on separate rows, and the span identity
 * (trace_id / span_id / parent_span_id as 16-digit hex) in args. The
 * output loads in Perfetto / chrome://tracing and round-trips through
 * parseTracezSpans(). Orphan spans (parent not present — e.g. a shard
 * subtree that was dropped) are emitted like any other span.
 */
std::string assembleChromeTrace(const std::vector<Span>& spans);

/**
 * Parses spans back out of assembleChromeTrace()/renderTracez() output
 * (metadata events are skipped). Returns false on malformed input with
 * a reason in @p error; tolerates unknown args.
 */
bool parseTracezSpans(const std::string& json, std::vector<Span>* out,
                      std::string* error = nullptr);

} // namespace tpc::obs
