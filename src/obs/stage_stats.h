/**
 * @file
 * Per-stage latency decomposition and tail-latency attribution.
 *
 * Every completed request is folded into a StageRecord — queue wait,
 * execution time against the predictor's estimate, time to the first
 * dynamic correction, post-correction tail — and accumulated into
 * mergeable log-linear histograms sharded per recording thread, so the
 * completion path takes one short per-shard lock and never contends
 * across workers. Requests finishing over the target E are additionally
 * tagged with a cause by classifyTail() (the component-level attribution
 * the paper's tail story needs: was it the predictor, the queue, or a
 * correction that fired too late or found no idle workers?) and the worst
 * offenders are kept in a bounded exemplar buffer so a violation can be
 * traced back to the policy decision that produced it.
 *
 * A StatsSampler aggregates the shards on a background thread into an
 * immutable StageSnapshot; the /statsz endpoint renders the cached
 * snapshot, so serving introspection never walks the shards on the event
 * loop.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "stats/histogram.h"

namespace tpc::obs {

/** Why a request finished over the target completion time E. */
enum class TailCause : std::uint8_t {
    /** Finished within target (or no target applied) — not a tail case. */
    kNone = 0,
    /** Execution met the target; queueing before dispatch pushed the
     *  response over it. */
    kQueueDelay = 1,
    /** The predictor underestimated and no correction ever raised the
     *  degree — the mispredicted-long request the paper's correction
     *  mechanism exists to catch. */
    kMispredictLong = 2,
    /** Correction raised the degree but the request still missed E. */
    kCorrectionLate = 3,
    /** Correction wanted more threads but found zero idle workers. */
    kNoIdleWorkers = 4,
    /** Rejected by admission control (never executed). */
    kShed = 5,
    /** Admitted but cancelled before dispatch: its server-side deadline
     *  expired while it waited in the queue (never executed). */
    kCancelled = 6,
};

inline constexpr std::size_t kTailCauseCount = 7;

/** Stable lower-case name used in /statsz labels and tables. */
const char* tailCauseName(TailCause cause);

/** The per-request facts the decomposition and classifier consume. */
struct StageRecord
{
    std::uint64_t requestId = 0;
    /** Distributed-trace id when the request was traced; 0 otherwise.
     *  Rendered on /statsz exemplar lines so a worst offender can be
     *  joined against its full timeline in /tracez. */
    std::uint64_t traceId = 0;
    /** Request class index (collector clamps to its class list). */
    std::uint32_t cls = 0;
    /** Submit -> completion (ms). */
    double responseMs = 0.0;
    /** Submit -> dispatch (ms). */
    double queueMs = 0.0;
    /** Predictor's sequential-time estimate (ms). */
    double predictedMs = 0.0;
    /** Policy's estimated parallel time at the chosen degree (ms);
     *  0 when the policy exposes none. */
    double estimatedMs = 0.0;
    /** Target completion time E applied at dispatch (ms); <= 0 when the
     *  policy has no target (baselines). */
    double targetMs = 0.0;
    /** Load-metric value the policy saw at dispatch (0 when the policy
     *  exposes no rationale); keys the adapt layer's per-load windows. */
    double loadValue = 0.0;
    /** Dispatch -> first degree raise (ms); negative when never raised. */
    double firstCorrectionDelayMs = -1.0;
    bool corrected = false;
    /** A correction check wanted more threads but found none idle. */
    bool starvedCorrection = false;
    int initialDegree = 1;
    int maxDegree = 1;
};

/**
 * Attributes one completion to a cause. Pure and deterministic; for any
 * record with targetMs > 0 and responseMs > targetMs it returns exactly
 * one of the four completion causes, so summing per-cause counts always
 * reproduces the number of over-target completions. Priority order:
 * queue delay (the request itself met E), correction starvation,
 * late correction, misprediction.
 */
TailCause classifyTail(const StageRecord& record);

/** Aggregated view of one request class. */
struct StageClassSnapshot
{
    std::string name;
    std::uint64_t completions = 0;
    /** Completions with responseMs > targetMs (targeted requests only). */
    std::uint64_t tail = 0;
    /** Per-cause counts; the four completion causes sum to `tail`,
     *  kShed counts admission rejections and kCancelled deadline
     *  cancellations (neither are completions). */
    std::array<std::uint64_t, kTailCauseCount> causes{};
    double predictedSumMs = 0.0;
    double serviceSumMs = 0.0;
    stats::LogHistogram responseMs;
    stats::LogHistogram queueMs;
    /** Dispatch -> completion. */
    stats::LogHistogram serviceMs;
    /** Dispatch -> first correction (corrected requests only). */
    stats::LogHistogram correctionDelayMs;
    /** First correction -> completion (corrected requests only). */
    stats::LogHistogram postCorrectionMs;
    /** max(0, service - estimated): how far reality overran the
     *  predictor (requests with an estimate only). */
    stats::LogHistogram overrunMs;
};

/** Immutable merged view of every shard at one point in time. */
struct StageSnapshot
{
    std::vector<StageClassSnapshot> classes;
    /** Worst over-target offenders, sorted by overshoot descending. */
    std::vector<StageRecord> exemplars;
    /** Total completions folded in across classes. */
    std::uint64_t records = 0;
};

/**
 * Sharded, thread-safe accumulator. record() hashes the calling thread to
 * a shard (same discipline as TraceRecorder); snapshot() locks shard by
 * shard and merges, so recording threads are never blocked for the whole
 * aggregation.
 */
class StageStatsCollector
{
  public:
    /**
     * @param classNames Request-class labels; cls indices at or past the
     *                   end clamp to the last class. Defaults to one
     *                   class "all".
     * @param shardCount Independent buckets (>= 1); size to the number of
     *                   recording threads.
     * @param exemplarCapacity Worst offenders kept per shard and in the
     *                   merged snapshot.
     */
    explicit StageStatsCollector(std::vector<std::string> classNames = {},
                                 std::size_t shardCount = 1,
                                 std::size_t exemplarCapacity = 16);

    StageStatsCollector(const StageStatsCollector&) = delete;
    StageStatsCollector& operator=(const StageStatsCollector&) = delete;

    /** Folds one completion into the calling thread's shard. */
    void record(const StageRecord& record);

    /** Folds into an explicit shard (callers with a natural index). */
    void recordShard(std::size_t shard, const StageRecord& record);

    /** Counts an admission rejection under cause `shed`. */
    void recordShed(std::uint32_t cls);

    /** Counts a pre-dispatch deadline cancellation under `cancelled`. */
    void recordCancelled(std::uint32_t cls);

    /** Merged view of all shards (allocates; call off the hot path or
     *  through a StatsSampler). */
    StageSnapshot snapshot() const;

    std::size_t shardCount() const { return shards_.size(); }
    std::size_t classCount() const { return classNames_.size(); }
    const std::vector<std::string>& classNames() const
    {
        return classNames_;
    }

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::vector<StageClassSnapshot> classes;
        /** Over-target records, worst kept when capacity is hit. */
        std::vector<StageRecord> exemplars;
    };

    std::uint32_t clampClass(std::uint32_t cls) const
    {
        const auto last =
            static_cast<std::uint32_t>(classNames_.size() - 1);
        return cls < last ? cls : last;
    }

    std::vector<std::string> classNames_;
    std::size_t exemplarCapacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/**
 * Background aggregation thread: periodically snapshots a collector and
 * publishes the result as an immutable shared_ptr, so readers (the
 * /statsz renderer on the RPC event loop) pay one mutex-protected
 * pointer copy instead of a shard walk.
 */
class StatsSampler
{
  public:
    /** Starts sampling immediately (one synchronous sample, then every
     *  @p intervalMs on the background thread). Collector is borrowed
     *  and must outlive the sampler. */
    StatsSampler(const StageStatsCollector& collector,
                 double intervalMs = 250.0);

    /** Stops and joins the sampler thread. */
    ~StatsSampler();

    StatsSampler(const StatsSampler&) = delete;
    StatsSampler& operator=(const StatsSampler&) = delete;

    /** The most recent snapshot; never null after construction. */
    std::shared_ptr<const StageSnapshot> latest() const;

    /** Takes a fresh snapshot synchronously and publishes it. */
    void sampleNow();

  private:
    void loop();

    const StageStatsCollector& collector_;
    const double intervalMs_;
    mutable std::mutex mutex_;
    std::shared_ptr<const StageSnapshot> latest_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

} // namespace tpc::obs
