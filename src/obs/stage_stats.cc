#include "obs/stage_stats.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <functional>

#include "util/logging.h"

namespace tpc::obs {

const char*
tailCauseName(TailCause cause)
{
    switch (cause) {
    case TailCause::kNone:
        return "none";
    case TailCause::kQueueDelay:
        return "queue_delay";
    case TailCause::kMispredictLong:
        return "mispredict_long";
    case TailCause::kCorrectionLate:
        return "correction_late";
    case TailCause::kNoIdleWorkers:
        return "no_idle_workers";
    case TailCause::kShed:
        return "shed";
    case TailCause::kCancelled:
        return "cancelled";
    }
    return "unknown";
}

TailCause
classifyTail(const StageRecord& record)
{
    if (record.targetMs <= 0.0 || record.responseMs <= record.targetMs)
        return TailCause::kNone;
    // The request's own execution met the target: only queueing before
    // dispatch pushed the response over E. No degree choice could have
    // saved it, so it is attributed to the queue, not the policy.
    if (record.responseMs - record.queueMs <= record.targetMs)
        return TailCause::kQueueDelay;
    if (record.starvedCorrection && !record.corrected)
        return TailCause::kNoIdleWorkers;
    if (record.corrected)
        return TailCause::kCorrectionLate;
    return TailCause::kMispredictLong;
}

StageStatsCollector::StageStatsCollector(std::vector<std::string> classNames,
                                         std::size_t shardCount,
                                         std::size_t exemplarCapacity)
    : classNames_(std::move(classNames)), exemplarCapacity_(exemplarCapacity)
{
    if (classNames_.empty())
        classNames_.push_back("all");
    TPC_CHECK(shardCount >= 1);
    shards_.reserve(shardCount);
    for (std::size_t i = 0; i < shardCount; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->classes.resize(classNames_.size());
        shard->exemplars.reserve(exemplarCapacity_);
        shards_.push_back(std::move(shard));
    }
}

void
StageStatsCollector::record(const StageRecord& record)
{
    const std::size_t shard =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        shards_.size();
    recordShard(shard, record);
}

void
StageStatsCollector::recordShard(std::size_t shard,
                                 const StageRecord& record)
{
    TPC_DCHECK(shard < shards_.size());
    Shard& s = *shards_[shard];
    std::lock_guard<std::mutex> lock(s.mutex);
    StageClassSnapshot& c = s.classes[clampClass(record.cls)];

    ++c.completions;
    const double serviceMs =
        std::max(0.0, record.responseMs - record.queueMs);
    c.predictedSumMs += record.predictedMs;
    c.serviceSumMs += serviceMs;
    c.responseMs.add(record.responseMs);
    c.queueMs.add(record.queueMs);
    c.serviceMs.add(serviceMs);
    if (record.corrected && record.firstCorrectionDelayMs >= 0.0) {
        c.correctionDelayMs.add(record.firstCorrectionDelayMs);
        c.postCorrectionMs.add(
            std::max(0.0, serviceMs - record.firstCorrectionDelayMs));
    }
    if (record.estimatedMs > 0.0)
        c.overrunMs.add(std::max(0.0, serviceMs - record.estimatedMs));

    const TailCause cause = classifyTail(record);
    if (cause == TailCause::kNone)
        return;
    ++c.tail;
    ++c.causes[static_cast<std::size_t>(cause)];

    // Exemplars: keep the worst overshoots. Replace the mildest entry
    // once full, so the buffer converges on the true worst offenders.
    if (exemplarCapacity_ == 0)
        return;
    const double overshoot = record.responseMs - record.targetMs;
    if (s.exemplars.size() < exemplarCapacity_) {
        s.exemplars.push_back(record);
        return;
    }
    std::size_t mildest = 0;
    double mildestOvershoot =
        s.exemplars[0].responseMs - s.exemplars[0].targetMs;
    for (std::size_t i = 1; i < s.exemplars.size(); ++i) {
        const double o =
            s.exemplars[i].responseMs - s.exemplars[i].targetMs;
        if (o < mildestOvershoot) {
            mildest = i;
            mildestOvershoot = o;
        }
    }
    if (overshoot > mildestOvershoot)
        s.exemplars[mildest] = record;
}

void
StageStatsCollector::recordShed(std::uint32_t cls)
{
    const std::size_t shard =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        shards_.size();
    Shard& s = *shards_[shard];
    std::lock_guard<std::mutex> lock(s.mutex);
    ++s.classes[clampClass(cls)]
          .causes[static_cast<std::size_t>(TailCause::kShed)];
}

void
StageStatsCollector::recordCancelled(std::uint32_t cls)
{
    const std::size_t shard =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        shards_.size();
    Shard& s = *shards_[shard];
    std::lock_guard<std::mutex> lock(s.mutex);
    ++s.classes[clampClass(cls)]
          .causes[static_cast<std::size_t>(TailCause::kCancelled)];
}

StageSnapshot
StageStatsCollector::snapshot() const
{
    StageSnapshot out;
    out.classes.resize(classNames_.size());
    for (std::size_t c = 0; c < classNames_.size(); ++c)
        out.classes[c].name = classNames_[c];

    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (std::size_t c = 0; c < classNames_.size(); ++c) {
            const StageClassSnapshot& src = shard->classes[c];
            StageClassSnapshot& dst = out.classes[c];
            dst.completions += src.completions;
            dst.tail += src.tail;
            for (std::size_t i = 0; i < kTailCauseCount; ++i)
                dst.causes[i] += src.causes[i];
            dst.predictedSumMs += src.predictedSumMs;
            dst.serviceSumMs += src.serviceSumMs;
            dst.responseMs.merge(src.responseMs);
            dst.queueMs.merge(src.queueMs);
            dst.serviceMs.merge(src.serviceMs);
            dst.correctionDelayMs.merge(src.correctionDelayMs);
            dst.postCorrectionMs.merge(src.postCorrectionMs);
            dst.overrunMs.merge(src.overrunMs);
        }
        out.exemplars.insert(out.exemplars.end(), shard->exemplars.begin(),
                             shard->exemplars.end());
    }
    for (const StageClassSnapshot& c : out.classes)
        out.records += c.completions;
    std::sort(out.exemplars.begin(), out.exemplars.end(),
              [](const StageRecord& a, const StageRecord& b) {
                  return a.responseMs - a.targetMs >
                         b.responseMs - b.targetMs;
              });
    if (out.exemplars.size() > exemplarCapacity_)
        out.exemplars.resize(exemplarCapacity_);
    return out;
}

StatsSampler::StatsSampler(const StageStatsCollector& collector,
                           double intervalMs)
    : collector_(collector), intervalMs_(intervalMs)
{
    TPC_CHECK(intervalMs > 0.0);
    sampleNow();
    thread_ = std::thread([this] { loop(); });
}

StatsSampler::~StatsSampler()
{
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
}

std::shared_ptr<const StageSnapshot>
StatsSampler::latest() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return latest_;
}

void
StatsSampler::sampleNow()
{
    auto snapshot =
        std::make_shared<const StageSnapshot>(collector_.snapshot());
    std::lock_guard<std::mutex> lock(mutex_);
    latest_ = std::move(snapshot);
}

void
StatsSampler::loop()
{
    // Sleep in short slices so destruction never waits a full interval.
    const auto slice = std::chrono::milliseconds(10);
    auto nextSample = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              intervalMs_));
    while (!stop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(slice);
        if (std::chrono::steady_clock::now() < nextSample)
            continue;
        sampleNow();
        nextSample += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(intervalMs_));
    }
}

} // namespace tpc::obs
