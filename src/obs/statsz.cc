#include "obs/statsz.h"

#include <algorithm>
#include <cstdio>

namespace tpc::obs {

namespace {

std::string
formatValue(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return buffer;
}

/** The quantiles every class/stage series reports. */
const std::vector<double>&
statszQuantiles()
{
    static const std::vector<double> kQuantiles = {0.5, 0.9, 0.99, 0.999};
    return kQuantiles;
}

const char*
quantileLabel(std::size_t i)
{
    static const char* kLabels[] = {"0.5", "0.9", "0.99", "0.999"};
    return kLabels[i];
}

} // namespace

void
PrometheusWriter::header(const std::string& name, const std::string& help,
                         const std::string& type)
{
    out_ += "# HELP " + name + " " + help + "\n";
    out_ += "# TYPE " + name + " " + type + "\n";
}

void
PrometheusWriter::sample(const std::string& name,
                         const std::vector<std::string>& labels,
                         double value)
{
    out_ += name;
    if (!labels.empty()) {
        out_ += '{';
        for (std::size_t i = 0; i < labels.size(); ++i) {
            if (i != 0)
                out_ += ',';
            out_ += labels[i];
        }
        out_ += '}';
    }
    out_ += ' ';
    out_ += formatValue(value);
    out_ += '\n';
}

void
PrometheusWriter::sample(const std::string& name,
                         const std::vector<std::string>& labels,
                         std::uint64_t value)
{
    sample(name, labels, static_cast<double>(value));
}

std::string
PrometheusWriter::label(const std::string& key, const std::string& value)
{
    std::string escaped;
    escaped.reserve(value.size());
    for (const char c : value) {
        if (c == '\\' || c == '"')
            escaped += '\\';
        if (c == '\n') {
            escaped += "\\n";
            continue;
        }
        escaped += c;
    }
    return key + "=\"" + escaped + "\"";
}

namespace {

/** Emits one quantile series + _count for a latency histogram. */
void
emitQuantiles(PrometheusWriter& w, const std::string& name,
              const std::vector<std::string>& labels,
              const stats::LogHistogram& histogram)
{
    const std::vector<double> qs = histogram.percentiles(statszQuantiles());
    for (std::size_t i = 0; i < qs.size(); ++i) {
        std::vector<std::string> quantileLabels = labels;
        quantileLabels.push_back(
            PrometheusWriter::label("quantile", quantileLabel(i)));
        w.sample(name, quantileLabels, qs[i]);
    }
    w.sample(name + "_count", labels, histogram.count());
}

/** The runtime-health lanes: event-loop, scheduler lock, worker
 *  occupancy, process gauges and CPU-profiler status. */
void
renderRuntimeHealth(PrometheusWriter& w, const StatszInfo& info)
{
    if (info.loopHealth != nullptr) {
        const StatszLoopHealthInfo& lh = *info.loopHealth;
        w.header("tpc_loop_wakeups_total",
                 "Event-loop self-pipe wake requests posted by worker "
                 "completions.",
                 "counter");
        w.sample("tpc_loop_wakeups_total", {}, lh.wakeups);
        w.header("tpc_loop_wake_drains_total",
                 "Self-pipe drains (wakeups minus drains = coalesced "
                 "wakes absorbed by one poll return).",
                 "counter");
        w.sample("tpc_loop_wake_drains_total", {}, lh.wakeDrains);
        w.header("tpc_loop_iterations_total",
                 "Event-loop iterations (poll returns processed).",
                 "counter");
        w.sample("tpc_loop_iterations_total", {}, lh.loopIterations);
        w.header("tpc_loop_iter_ms",
                 "Event-loop iteration work time (poll return -> dispatch "
                 "done) quantiles; a stall here delays every connection.",
                 "summary");
        emitQuantiles(w, "tpc_loop_iter_ms", {}, lh.iterWorkMs);
        w.header("tpc_wake_dispatch_ms",
                 "Completion post -> response dispatch latency quantiles "
                 "(how long finished work waits for the loop).",
                 "summary");
        emitQuantiles(w, "tpc_wake_dispatch_ms", {}, lh.wakeDispatchMs);
    }

    if (info.lockWait != nullptr) {
        const StatszLockWaitInfo& lw = *info.lockWait;
        w.header("tpc_sched_lock_acquisitions_total",
                 "Dispatch-queue lock acquisitions.", "counter");
        w.sample("tpc_sched_lock_acquisitions_total", {}, lw.acquisitions);
        w.header("tpc_sched_lock_contended_total",
                 "Dispatch-queue lock acquisitions that had to wait.",
                 "counter");
        w.sample("tpc_sched_lock_contended_total", {}, lw.contended);
        w.header("tpc_sched_lock_wait_ms",
                 "Contended dispatch-queue lock wait quantiles.",
                 "summary");
        emitQuantiles(w, "tpc_sched_lock_wait_ms", {}, lw.waitMs);
    }

    if (!info.workerBusyMs.empty()) {
        w.header("tpc_worker_busy_ms",
                 "Cumulative busy time per worker thread (occupancy "
                 "timeline; skew reveals load imbalance).",
                 "counter");
        for (std::size_t i = 0; i < info.workerBusyMs.size(); ++i)
            w.sample("tpc_worker_busy_ms",
                     {PrometheusWriter::label("worker",
                                              std::to_string(i))},
                     info.workerBusyMs[i]);
    }

    if (info.proc != nullptr && info.proc->ok) {
        const ProcStats& p = *info.proc;
        w.header("tpc_proc_rss_bytes", "Resident set size.", "gauge");
        w.sample("tpc_proc_rss_bytes", {}, p.rssBytes);
        w.header("tpc_proc_vsize_bytes", "Virtual memory size.", "gauge");
        w.sample("tpc_proc_vsize_bytes", {}, p.vsizeBytes);
        w.header("tpc_proc_cpu_sec",
                 "Cumulative CPU seconds (mode label: user or system).",
                 "counter");
        w.sample("tpc_proc_cpu_sec",
                 {PrometheusWriter::label("mode", "user")}, p.utimeSec);
        w.sample("tpc_proc_cpu_sec",
                 {PrometheusWriter::label("mode", "system")}, p.stimeSec);
        w.header("tpc_proc_ctx_switches_total",
                 "Context switches (kind label: voluntary or "
                 "involuntary; involuntary growth means CPU pressure).",
                 "counter");
        w.sample("tpc_proc_ctx_switches_total",
                 {PrometheusWriter::label("kind", "voluntary")},
                 p.voluntaryCtxSwitches);
        w.sample("tpc_proc_ctx_switches_total",
                 {PrometheusWriter::label("kind", "involuntary")},
                 p.involuntaryCtxSwitches);
        w.header("tpc_proc_open_fds", "Open file descriptors.", "gauge");
        w.sample("tpc_proc_open_fds",
                 {}, static_cast<std::uint64_t>(p.openFds));
        w.header("tpc_proc_threads", "OS threads in the process.",
                 "gauge");
        w.sample("tpc_proc_threads", {},
                 static_cast<std::uint64_t>(p.threads));
    }

    if (info.profiler != nullptr) {
        const StatszProfilerInfo& pr = *info.profiler;
        w.header("tpc_profiler_running",
                 "1 while the sampling CPU profiler is capturing "
                 "(supported label reflects platform support).",
                 "gauge");
        w.sample("tpc_profiler_running",
                 {PrometheusWriter::label("supported",
                                          pr.supported ? "1" : "0")},
                 std::uint64_t{pr.running ? 1u : 0u});
        w.header("tpc_profiler_hz", "Configured sampling rate.", "gauge");
        w.sample("tpc_profiler_hz", {}, pr.hz);
        w.header("tpc_profiler_threads",
                 "Threads registered with the profiler.", "gauge");
        w.sample("tpc_profiler_threads", {},
                 static_cast<std::uint64_t>(pr.threads));
        w.header("tpc_profiler_samples_total",
                 "Stack samples captured since the last reset.",
                 "counter");
        w.sample("tpc_profiler_samples_total", {}, pr.samples);
        w.header("tpc_profiler_dropped_total",
                 "Samples dropped on full per-thread rings.", "counter");
        w.sample("tpc_profiler_dropped_total", {}, pr.dropped);
        w.header("tpc_profiler_duration_ms",
                 "Cumulative profiling session duration.", "counter");
        w.sample("tpc_profiler_duration_ms", {}, pr.durationMs);
    }
}

/** The aggregator lane: cross-tier tail attribution of a fan-out tier. */
void
renderFanout(PrometheusWriter& w, const FanoutSnapshot& fanout)
{
    w.header("fanout_completions_total",
             "Aggregated (fanned-out) requests answered, per class.",
             "counter");
    for (const FanoutClassSnapshot& c : fanout.classes)
        w.sample("fanout_completions_total",
                 {PrometheusWriter::label("class", c.name)}, c.completions);

    w.header("fanout_tail_total",
             "Aggregated responses finishing over the target E per class.",
             "counter");
    for (const FanoutClassSnapshot& c : fanout.classes)
        w.sample("fanout_tail_total",
                 {PrometheusWriter::label("class", c.name)}, c.tail);

    w.header("fanout_straggler_cause_total",
             "Over-target aggregated responses by attributed straggler "
             "cause; causes partition the over-target count.",
             "counter");
    for (const FanoutClassSnapshot& c : fanout.classes) {
        for (std::size_t i = 1; i < kStragglerCauseCount; ++i)
            w.sample("fanout_straggler_cause_total",
                     {PrometheusWriter::label("class", c.name),
                      PrometheusWriter::label(
                          "cause", stragglerCauseName(
                                       static_cast<StragglerCause>(i)))},
                     c.causes[i]);
    }

    w.header("fanout_degraded_total",
             "Aggregated responses answered with partial coverage "
             "(surviving-shard merge; a shard leg was down or late).",
             "counter");
    for (const FanoutClassSnapshot& c : fanout.classes)
        w.sample("fanout_degraded_total",
                 {PrometheusWriter::label("class", c.name)}, c.degraded);

    w.header("fanout_coverage_pct",
             "Coverage (answered/total shards * 100) quantiles of "
             "aggregated responses; a healthy tier sits at 100.",
             "summary");
    for (const FanoutClassSnapshot& c : fanout.classes)
        emitQuantiles(w, "fanout_coverage_pct",
                      {PrometheusWriter::label("class", c.name)},
                      c.coveragePct);

    w.header("fanout_client_shed_total",
             "Client requests rejected by aggregator admission control.",
             "counter");
    for (const FanoutClassSnapshot& c : fanout.classes)
        w.sample("fanout_client_shed_total",
                 {PrometheusWriter::label("class", c.name)}, c.clientShed);

    w.header("fanout_response_ms",
             "Aggregated response-time quantiles per class (receive -> "
             "merged reply).",
             "summary");
    for (const FanoutClassSnapshot& c : fanout.classes)
        emitQuantiles(w, "fanout_response_ms",
                      {PrometheusWriter::label("class", c.name)},
                      c.responseMs);

    w.header("fanout_shard_latency_ms",
             "Per-shard reply-latency quantiles (sub-request send -> "
             "reply; the hedge trigger's input).",
             "summary");
    for (const FanoutShardSnapshot& s : fanout.shards)
        emitQuantiles(w, "fanout_shard_latency_ms",
                      {PrometheusWriter::label("shard", s.name)},
                      s.latencyMs);

    const auto emitShardCounter =
        [&w, &fanout](const char* name, const char* help,
                      std::uint64_t FanoutShardSnapshot::* member) {
            w.header(name, help, "counter");
            for (const FanoutShardSnapshot& s : fanout.shards)
                w.sample(name, {PrometheusWriter::label("shard", s.name)},
                         s.*member);
        };
    emitShardCounter("fanout_hedge_issued_total",
                     "Hedged backup sub-requests issued.",
                     &FanoutShardSnapshot::hedgeIssued);
    emitShardCounter("fanout_hedge_won_total",
                     "Hedges whose backup reply won the shard leg.",
                     &FanoutShardSnapshot::hedgeWon);
    emitShardCounter("fanout_hedge_wasted_total",
                     "Hedges whose primary replied first.",
                     &FanoutShardSnapshot::hedgeWasted);
    emitShardCounter("fanout_shard_shed_total",
                     "BUSY replies received from the shard.",
                     &FanoutShardSnapshot::shed);
    emitShardCounter("fanout_shard_deadline_miss_total",
                     "Shard legs with no usable reply at the fanout "
                     "deadline.",
                     &FanoutShardSnapshot::deadlineMisses);
    emitShardCounter("fanout_shard_late_total",
                     "Replies arriving after the leg was settled or the "
                     "client answered (hedge losers, post-deadline).",
                     &FanoutShardSnapshot::lateResponses);
    emitShardCounter("fanout_shard_retry_issued_total",
                     "Shed shard legs re-sent after backoff "
                     "(budget-funded re-attempts).",
                     &FanoutShardSnapshot::retriesIssued);
    emitShardCounter("fanout_shard_retry_suppressed_total",
                     "Leg retries the token-bucket retry budget refused "
                     "to fund.",
                     &FanoutShardSnapshot::retriesSuppressed);
    emitShardCounter("fanout_shard_retry_success_total",
                     "Retried legs that produced a usable reply.",
                     &FanoutShardSnapshot::retrySuccesses);

    w.header("fanout_deadline_exceeded_total",
             "Client requests rejected because their end-to-end budget "
             "was exhausted (never fanned out or unanswerable).",
             "counter");
    for (const FanoutClassSnapshot& c : fanout.classes)
        w.sample("fanout_deadline_exceeded_total",
                 {PrometheusWriter::label("class", c.name)},
                 c.deadlineExceeded);

    w.header("fanout_merge_overhead_ms",
             "Aggregation overhead past the slowest usable shard reply "
             "(merge + respond; the PCS budget-split reserve).",
             "summary");
    emitQuantiles(w, "fanout_merge_overhead_ms", {},
                  fanout.mergeOverheadMs);

    if (!fanout.breakers.empty()) {
        w.header("fanout_breaker_state",
                 "Circuit-breaker state per upstream endpoint "
                 "(0 closed, 1 open, 2 half-open).",
                 "gauge");
        for (const FanoutBreakerSnapshot& b : fanout.breakers)
            w.sample("fanout_breaker_state",
                     {PrometheusWriter::label("endpoint", b.endpoint)},
                     static_cast<double>(b.state));
        w.header("fanout_breaker_backoff_ms",
                 "Current reconnect backoff per upstream endpoint.",
                 "gauge");
        for (const FanoutBreakerSnapshot& b : fanout.breakers)
            w.sample("fanout_breaker_backoff_ms",
                     {PrometheusWriter::label("endpoint", b.endpoint)},
                     b.backoffMs);
        const auto emitBreakerCounter =
            [&w, &fanout](const char* name, const char* help,
                          std::uint64_t FanoutBreakerSnapshot::* member) {
                w.header(name, help, "counter");
                for (const FanoutBreakerSnapshot& b : fanout.breakers)
                    w.sample(name,
                             {PrometheusWriter::label("endpoint",
                                                      b.endpoint)},
                             b.*member);
            };
        emitBreakerCounter("fanout_breaker_opened_total",
                           "Breaker trips (transitions into open).",
                           &FanoutBreakerSnapshot::opened);
        emitBreakerCounter("fanout_breaker_closed_total",
                           "Breaker recoveries (transitions into closed).",
                           &FanoutBreakerSnapshot::closed);
        emitBreakerCounter("fanout_breaker_probes_total",
                           "Half-open probe sub-requests issued.",
                           &FanoutBreakerSnapshot::probes);
        emitBreakerCounter("fanout_reconnects_total",
                           "Reconnect dials attempted after a drop.",
                           &FanoutBreakerSnapshot::reconnects);
    }

    w.header("fanout_unmatched_responses_total",
             "Replies matching no live fan-out (already reclaimed).",
             "counter");
    w.sample("fanout_unmatched_responses_total", {},
             fanout.unmatchedResponses);
}

} // namespace

std::string
renderStatsz(const StatszInfo& info, const StageSnapshot* stages)
{
    return renderStatsz(info, stages, nullptr);
}

std::string
renderStatsz(const StatszInfo& info, const StageSnapshot* stages,
             const FanoutSnapshot* fanout)
{
    PrometheusWriter w;

    w.header("tpc_up", "Server liveness (always 1 when answering).",
             "gauge");
    w.sample("tpc_up", {PrometheusWriter::label("policy", info.policyName)},
             std::uint64_t{1});
    w.header("tpc_uptime_ms", "Wall time since the server started.",
             "gauge");
    w.sample("tpc_uptime_ms", {}, info.uptimeMs);

    w.header("tpc_workers", "Worker-pool occupancy.", "gauge");
    w.sample("tpc_workers", {PrometheusWriter::label("state", "total")},
             static_cast<double>(info.totalWorkers));
    w.sample("tpc_workers", {PrometheusWriter::label("state", "busy")},
             static_cast<double>(info.busyWorkers));
    w.sample("tpc_workers", {PrometheusWriter::label("state", "idle")},
             static_cast<double>(info.totalWorkers - info.busyWorkers));
    w.header("tpc_queue_depth", "Requests waiting for dispatch.", "gauge");
    w.sample("tpc_queue_depth", {}, static_cast<double>(info.queueDepth));

    w.header("tpc_dispatches_total", "Policy dispatch decisions.",
             "counter");
    w.sample("tpc_dispatches_total", {}, info.dispatches);
    w.header("tpc_corrections_total", "Dynamic corrections fired.",
             "counter");
    w.sample("tpc_corrections_total", {}, info.corrections);
    w.header("tpc_correction_threads_added_total",
             "Worker threads added by corrections.", "counter");
    w.sample("tpc_correction_threads_added_total", {},
             info.correctionThreadsAdded);

    w.header("tpc_admitted_total", "Requests admitted by load shedding.",
             "counter");
    w.sample("tpc_admitted_total", {}, info.admitted);
    w.header("tpc_shed_total", "Requests rejected with BUSY.", "counter");
    w.sample("tpc_shed_total", {}, info.shed);
    w.header("tpc_in_flight", "Admitted requests not yet answered.",
             "gauge");
    w.sample("tpc_in_flight", {}, info.inFlight);
    w.header("tpc_cancelled_total",
             "Admitted requests cancelled before dispatch by the "
             "server-side deadline (distinct from sheds).",
             "counter");
    w.sample("tpc_cancelled_total", {}, info.cancelled);
    w.header("tpc_deadline_exceeded_total",
             "Requests rejected or retired because their end-to-end "
             "deadline budget was exhausted (earliest-hop rejection).",
             "counter");
    w.sample("tpc_deadline_exceeded_total", {}, info.deadlineExceeded);

    if (!info.tenants.empty()) {
        w.header("tpc_admit", "Requests admitted, by tenant.", "counter");
        for (const StatszTenantInfo& t : info.tenants)
            w.sample("tpc_admit", {PrometheusWriter::label("tenant", t.name)},
                     t.admitted);
        w.header("tpc_shed", "Requests shed by weighted admission, by "
                             "tenant.",
                 "counter");
        for (const StatszTenantInfo& t : info.tenants)
            w.sample("tpc_shed", {PrometheusWriter::label("tenant", t.name)},
                     t.shed);
        w.header("tpc_goodput", "OK responses delivered, by tenant.",
                 "counter");
        for (const StatszTenantInfo& t : info.tenants)
            w.sample("tpc_goodput",
                     {PrometheusWriter::label("tenant", t.name)}, t.goodput);
        w.header("tpc_tenant_in_flight",
                 "Admitted in-flight requests, by tenant.", "gauge");
        for (const StatszTenantInfo& t : info.tenants)
            w.sample("tpc_tenant_in_flight",
                     {PrometheusWriter::label("tenant", t.name)},
                     static_cast<double>(std::max(0, t.inFlight)));
        w.header("tpc_tenant_weight",
                 "Configured weighted-fair share weight, by tenant.",
                 "gauge");
        for (const StatszTenantInfo& t : info.tenants)
            w.sample("tpc_tenant_weight",
                     {PrometheusWriter::label("tenant", t.name)}, t.weight);
        w.header("tpc_tenant_guarantee",
                 "Guaranteed in-flight slots under contention, by tenant.",
                 "gauge");
        for (const StatszTenantInfo& t : info.tenants)
            w.sample("tpc_tenant_guarantee",
                     {PrometheusWriter::label("tenant", t.name)},
                     static_cast<double>(t.guarantee));
    }
    w.header("tpc_disconnects_retired_total",
             "Queued requests retired because their connection died.",
             "counter");
    w.sample("tpc_disconnects_retired_total", {}, info.disconnectsRetired);
    w.header("tpc_faults_injected_total",
             "Faults fired by an attached fault injector.", "counter");
    w.sample("tpc_faults_injected_total", {}, info.faultsInjected);
    w.header("tpc_trace_dropped_events_total",
             "Trace events dropped by capacity-bounded shards.", "counter");
    w.sample("tpc_trace_dropped_events_total", {},
             info.droppedTraceEvents);

    renderRuntimeHealth(w, info);

    if (!info.targetTable.empty()) {
        w.header("tpc_target_table_ms",
                 "Target completion time E per load bucket (upper bound "
                 "in the load label).",
                 "gauge");
        for (const StatszTargetEntry& entry : info.targetTable)
            w.sample("tpc_target_table_ms",
                     {PrometheusWriter::label("load",
                                              formatValue(entry.load))},
                     entry.targetMs);
    }

    if (info.tableVersion > 0) {
        w.header("tpc_target_table_version",
                 "Version of the live target table serving decisions "
                 "consume (source label: offline or adapted).",
                 "gauge");
        w.sample("tpc_target_table_version",
                 {PrometheusWriter::label("source", info.tableSource)},
                 info.tableVersion);
    }

    if (info.adaptation != nullptr) {
        const StatszAdaptationInfo& a = *info.adaptation;
        w.header("tpc_adapt_state",
                 "Closed-loop adaptation state machine position "
                 "(state label: shadowing, holding or cooldown).",
                 "gauge");
        w.sample("tpc_adapt_state",
                 {PrometheusWriter::label("state", a.state)}, 1.0);
        w.header("tpc_adapt_shadow_score",
                 "Shadow-evaluation score from the last evaluated window "
                 "(lower is better; table label: active or candidate).",
                 "gauge");
        w.sample("tpc_adapt_shadow_score",
                 {PrometheusWriter::label("table", "active")},
                 a.activeScore);
        if (a.hasCandidate)
            w.sample("tpc_adapt_shadow_score",
                     {PrometheusWriter::label("table", "candidate")},
                     a.candidateScore);
        w.header("tpc_adapt_consecutive_wins",
                 "Consecutive windows the candidate beat the active "
                 "table by the hysteresis margin.",
                 "gauge");
        w.sample("tpc_adapt_consecutive_wins", {},
                 static_cast<std::uint64_t>(a.consecutiveWins));
        w.header("tpc_adapt_windows_total",
                 "Observation windows closed by the adapter.", "counter");
        w.sample("tpc_adapt_windows_total", {}, a.windowsEvaluated);
        w.header("tpc_adapt_refits_total",
                 "Candidate tables re-fitted from windowed observations.",
                 "counter");
        w.sample("tpc_adapt_refits_total", {}, a.refits);
        w.header("tpc_adapt_promotions_total",
                 "Candidate tables promoted to serving.", "counter");
        w.sample("tpc_adapt_promotions_total", {}, a.promotions);
        w.header("tpc_adapt_rollbacks_total",
                 "Post-promotion regressions demoted back to the "
                 "last-known-good table.",
                 "counter");
        w.sample("tpc_adapt_rollbacks_total", {}, a.rollbacks);
        w.header("tpc_adapt_window_completions",
                 "Completions observed in the last closed window.",
                 "gauge");
        w.sample("tpc_adapt_window_completions", {},
                 a.lastWindowCompletions);
        w.header("tpc_adapt_window_p99_ms",
                 "Actual p99 response time of the last closed window.",
                 "gauge");
        w.sample("tpc_adapt_window_p99_ms", {}, a.lastWindowP99Ms);
        w.header("tpc_adapt_window_miss_pct",
                 "Percent of targeted completions over their target E "
                 "in the last closed window.",
                 "gauge");
        w.sample("tpc_adapt_window_miss_pct", {}, a.lastWindowMissPct);
    }

    if (info.modelVersion > 0) {
        w.header("tpc_predict_model_version",
                 "Version of the live predictor model the dispatch path "
                 "consumes (source label: offline or retrained).",
                 "gauge");
        w.sample("tpc_predict_model_version",
                 {PrometheusWriter::label("source", info.modelSource)},
                 info.modelVersion);
    }

    if (info.predictor != nullptr) {
        const StatszPredictorInfo& p = *info.predictor;
        w.header("tpc_predict_state",
                 "Online-retraining state machine position "
                 "(state label: monitoring, holding or cooldown).",
                 "gauge");
        w.sample("tpc_predict_state",
                 {PrometheusWriter::label("state", p.state)}, 1.0);
        w.header("tpc_predict_window_err_ms",
                 "Absolute prediction-error quantiles of the last closed "
                 "window (quantile label: p50 or the drift quantile).",
                 "gauge");
        w.sample("tpc_predict_window_err_ms",
                 {PrometheusWriter::label("quantile", "p50")},
                 p.lastWindowErrP50);
        w.sample("tpc_predict_window_err_ms",
                 {PrometheusWriter::label("quantile", "drift")},
                 p.lastWindowErrQuantile);
        w.header("tpc_predict_baseline_err_ms",
                 "Slow EWMA baseline the drift test compares the window "
                 "error quantile against.",
                 "gauge");
        w.sample("tpc_predict_baseline_err_ms", {},
                 p.baselineErrQuantile);
        w.header("tpc_predict_shadow_mae_ms",
                 "Holdback mean absolute error from the last shadow "
                 "evaluation (model label: active or candidate).",
                 "gauge");
        w.sample("tpc_predict_shadow_mae_ms",
                 {PrometheusWriter::label("model", "active")},
                 p.activeShadowMae);
        if (p.hasCandidate)
            w.sample("tpc_predict_shadow_mae_ms",
                     {PrometheusWriter::label("model", "candidate")},
                     p.candidateShadowMae);
        w.header("tpc_predict_shadow_recall",
                 "Holdback recall at the long-request threshold from the "
                 "last shadow evaluation (model label: active or "
                 "candidate).",
                 "gauge");
        w.sample("tpc_predict_shadow_recall",
                 {PrometheusWriter::label("model", "active")},
                 p.activeShadowRecall);
        if (p.hasCandidate)
            w.sample("tpc_predict_shadow_recall",
                     {PrometheusWriter::label("model", "candidate")},
                     p.candidateShadowRecall);
        w.header("tpc_predict_consecutive_wins",
                 "Consecutive windows the candidate beat the active "
                 "model by the hysteresis margin.",
                 "gauge");
        w.sample("tpc_predict_consecutive_wins", {},
                 static_cast<std::uint64_t>(p.consecutiveWins));
        w.header("tpc_predict_buffered_samples",
                 "Completions currently in the retraining replay buffer.",
                 "gauge");
        w.sample("tpc_predict_buffered_samples", {}, p.bufferedSamples);
        w.header("tpc_predict_windows_total",
                 "Observation windows closed by the retrainer.",
                 "counter");
        w.sample("tpc_predict_windows_total", {}, p.windowsEvaluated);
        w.header("tpc_predict_drift_windows_total",
                 "Windows whose error quantile exceeded the drift "
                 "threshold.",
                 "counter");
        w.sample("tpc_predict_drift_windows_total", {}, p.driftWindows);
        w.header("tpc_predict_retrains_total",
                 "Candidate models retrained from buffered completions.",
                 "counter");
        w.sample("tpc_predict_retrains_total", {}, p.retrains);
        w.header("tpc_predict_promotions_total",
                 "Candidate models promoted to serving.", "counter");
        w.sample("tpc_predict_promotions_total", {}, p.promotions);
        w.header("tpc_predict_rollbacks_total",
                 "Post-promotion regressions demoted back to the "
                 "last-known-good model.",
                 "counter");
        w.sample("tpc_predict_rollbacks_total", {}, p.rollbacks);
        w.header("tpc_predict_window_completions",
                 "Completions observed in the last closed window.",
                 "gauge");
        w.sample("tpc_predict_window_completions", {},
                 p.lastWindowCompletions);
    }

    if (stages == nullptr) {
        if (fanout != nullptr)
            renderFanout(w, *fanout);
        return w.take();
    }

    w.header("tpc_completions_total", "Completed requests per class.",
             "counter");
    for (const StageClassSnapshot& c : stages->classes)
        w.sample("tpc_completions_total",
                 {PrometheusWriter::label("class", c.name)},
                 c.completions);

    w.header("tpc_tail_total",
             "Completions finishing over the target E per class.",
             "counter");
    for (const StageClassSnapshot& c : stages->classes)
        w.sample("tpc_tail_total",
                 {PrometheusWriter::label("class", c.name)}, c.tail);

    w.header("tpc_tail_cause_total",
             "Over-target completions by attributed cause (plus "
             "admission sheds under cause=\"shed\").",
             "counter");
    for (const StageClassSnapshot& c : stages->classes) {
        for (std::size_t i = 1; i < kTailCauseCount; ++i) {
            w.sample("tpc_tail_cause_total",
                     {PrometheusWriter::label("class", c.name),
                      PrometheusWriter::label(
                          "cause",
                          tailCauseName(static_cast<TailCause>(i)))},
                     c.causes[i]);
        }
    }

    w.header("tpc_stage_latency_ms",
             "Per-stage latency quantiles: response (submit->done), "
             "queue (submit->dispatch), service (dispatch->done), "
             "correction_delay (dispatch->first raise), post_correction "
             "(first raise->done), overrun (service minus policy "
             "estimate).",
             "summary");
    const auto emitStage = [&w](const std::string& cls, const char* stage,
                                const stats::LogHistogram& histogram) {
        const std::vector<double> qs =
            histogram.percentiles(statszQuantiles());
        for (std::size_t i = 0; i < qs.size(); ++i)
            w.sample("tpc_stage_latency_ms",
                     {PrometheusWriter::label("class", cls),
                      PrometheusWriter::label("stage", stage),
                      PrometheusWriter::label("quantile",
                                              quantileLabel(i))},
                     qs[i]);
        w.sample("tpc_stage_latency_ms_count",
                 {PrometheusWriter::label("class", cls),
                  PrometheusWriter::label("stage", stage)},
                 histogram.count());
    };
    for (const StageClassSnapshot& c : stages->classes) {
        emitStage(c.name, "response", c.responseMs);
        emitStage(c.name, "queue", c.queueMs);
        emitStage(c.name, "service", c.serviceMs);
        emitStage(c.name, "correction_delay", c.correctionDelayMs);
        emitStage(c.name, "post_correction", c.postCorrectionMs);
        emitStage(c.name, "overrun", c.overrunMs);
    }

    w.header("tpc_predicted_ms_sum",
             "Sum of predicted sequential times (with "
             "tpc_service_ms_sum: predicted-vs-actual ratio).",
             "counter");
    for (const StageClassSnapshot& c : stages->classes)
        w.sample("tpc_predicted_ms_sum",
                 {PrometheusWriter::label("class", c.name)},
                 c.predictedSumMs);
    w.header("tpc_service_ms_sum", "Sum of actual execution times.",
             "counter");
    for (const StageClassSnapshot& c : stages->classes)
        w.sample("tpc_service_ms_sum",
                 {PrometheusWriter::label("class", c.name)},
                 c.serviceSumMs);

    // Worst offenders ride along as comments: ignored by scrapers, read
    // by humans pulling the endpoint during an incident.
    for (const StageRecord& e : stages->exemplars) {
        char line[320];
        // A traced worst offender links to its /tracez timeline: the
        // 16-digit hex id joins against the trace_id args there.
        char traceRef[32] = "";
        if (e.traceId != 0)
            std::snprintf(traceRef, sizeof(traceRef), " trace=%016llx",
                          static_cast<unsigned long long>(e.traceId));
        std::snprintf(
            line, sizeof(line),
            "# exemplar id=%llu cls=%u response_ms=%.3f target_ms=%.3f "
            "queue_ms=%.3f predicted_ms=%.3f degree=%d->%d corrected=%d "
            "cause=%s%s\n",
            static_cast<unsigned long long>(e.requestId), e.cls,
            e.responseMs, e.targetMs, e.queueMs, e.predictedMs,
            e.initialDegree, e.maxDegree, e.corrected ? 1 : 0,
            tailCauseName(classifyTail(e)), traceRef);
        w.raw(line);
    }
    if (fanout != nullptr)
        renderFanout(w, *fanout);
    return w.take();
}

} // namespace tpc::obs
