/**
 * @file
 * Process-level resource gauges sampled from /proc/self.
 *
 * The serving benches make overhead claims ("profiler costs ≤2%");
 * these gauges let the server's own telemetry corroborate them: RSS,
 * user/system CPU time, voluntary/involuntary context switches and the
 * open-fd count all surface in /statsz and the metrics CSV, so a bench
 * or smoke run can diff them across configurations without strace/ps.
 *
 * On non-Linux platforms sampleProcStats() returns ok == false and all
 * lanes render nothing.
 */
#pragma once

#include <cstdint>

namespace tpc::obs {

/** One sample of /proc/self counters. Times in seconds, sizes in bytes. */
struct ProcStats
{
    bool ok = false;
    double rssBytes = 0.0;
    double vsizeBytes = 0.0;
    double utimeSec = 0.0;
    double stimeSec = 0.0;
    std::uint64_t voluntaryCtxSwitches = 0;
    std::uint64_t involuntaryCtxSwitches = 0;
    int openFds = 0;
    int threads = 0;
};

/** Reads /proc/self/{stat,status,fd}. Cheap enough to call per window. */
ProcStats sampleProcStats();

class MetricsRegistry;

/**
 * Publishes a sample into gauges: proc_rss_bytes, proc_vsize_bytes,
 * proc_utime_sec, proc_stime_sec, proc_ctx_voluntary,
 * proc_ctx_involuntary, proc_open_fds, proc_threads.
 */
void publishProcStats(MetricsRegistry& metrics, const ProcStats& sample);

} // namespace tpc::obs
