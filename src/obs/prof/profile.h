/**
 * @file
 * Profile snapshot model and exporters.
 *
 * A ProfileSnapshot is the profiler's sole output type: aggregated
 * (thread, call-stack) → sample-count pairs plus session metadata.
 * Exporters turn it into the two interchange formats the tooling
 * ecosystem expects:
 *
 *  - folded stacks ("thread;root;...;leaf count" lines) feeding
 *    flamegraph.pl / inferno / speedscope's folded importer, and
 *  - speedscope's native JSON schema with per-thread sampled profiles.
 *
 * Symbolization is injected as a SymbolResolver so tests can pin
 * deterministic names and production uses dladdr + demangle with a
 * hex-address fallback for frames no symbol table covers.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tpc::obs::prof {

/** One aggregated call stack: program counters stored leaf-first. */
struct ProfileStack
{
    std::string thread;
    std::vector<std::uintptr_t> pcs;
    std::uint64_t count = 0;
};

/** Immutable view of everything the profiler collected in a session. */
struct ProfileSnapshot
{
    bool supported = false;
    bool running = false;
    double hz = 0.0;
    /** Wall-clock milliseconds the profiler has been armed. */
    double durationMs = 0.0;
    /** Samples represented in `stacks` (sum of counts). */
    std::uint64_t samples = 0;
    /** Samples lost to full rings (never blocks the sampled thread). */
    std::uint64_t dropped = 0;
    std::vector<ProfileStack> stacks;
};

/**
 * Maps a program counter to a display name. Must be callable from a
 * regular thread (not a signal handler) — symbolization always happens
 * at export time, off the hot path.
 */
using SymbolResolver = std::function<std::string(std::uintptr_t)>;

/**
 * dladdr-based resolver with __cxa_demangle and, failing both, a
 * "0x<hex>" fallback so unsymbolizable frames stay distinguishable.
 * Caches lookups internally (the same pc repeats across thousands of
 * samples).
 */
SymbolResolver defaultSymbolResolver();

/**
 * Brendan-Gregg folded format, one line per unique stack:
 * "thread;rootFrame;...;leafFrame count\n". Stacks are printed
 * root-first (pcs are stored leaf-first). Deterministic ordering:
 * lines are sorted lexicographically.
 */
std::string renderFolded(const ProfileSnapshot& snapshot,
                         const SymbolResolver& resolve = defaultSymbolResolver());

/**
 * speedscope JSON (https://www.speedscope.app/file-format-schema.json):
 * one "sampled" profile per thread, frames deduplicated into the
 * shared frame table, weights in sample counts.
 */
std::string renderSpeedscope(const ProfileSnapshot& snapshot,
                             const SymbolResolver& resolve = defaultSymbolResolver());

/** Escapes a string for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string& text);

} // namespace tpc::obs::prof
