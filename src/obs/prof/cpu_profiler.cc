#if defined(__linux__) && !defined(_GNU_SOURCE)
#define _GNU_SOURCE
#endif

#include "obs/prof/cpu_profiler.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/prof/sample_ring.h"

#if defined(__linux__)
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif // __linux__

namespace tpc::obs::prof {

namespace {

struct ThreadState
{
    std::string name;
#if defined(__linux__)
    pthread_t pthread{};
    pid_t tid = 0;
    timer_t timer{};
    bool timerCreated = false;
#endif
    std::uintptr_t stackLo = 0;
    std::uintptr_t stackHi = 0;
    SampleRing ring;

    ThreadState(std::string threadName, std::size_t ringCapacity)
        : name(std::move(threadName)), ring(ringCapacity)
    {
    }
};

// Owned by the registering thread; read by the SIGPROF handler, which
// runs on that same thread, so plain (non-atomic) access is safe.
thread_local ThreadState* tlsState = nullptr;

// Cheap armed/disarmed flag the handler checks before unwinding. A
// stale read only means one extra or one missing sample at a session
// boundary — harmless.
std::atomic<bool> gRunning{false};

#if defined(__linux__)

/**
 * Async-signal-safe frame-pointer unwind from the interrupted context.
 * Returns the number of pcs written (leaf first). The walk stops at the
 * first frame pointer that leaves the thread's stack bounds, loses
 * alignment, or fails to strictly increase — all three guard against
 * chasing garbage when a frame was built without a frame pointer.
 */
std::uint16_t unwindFromContext(void* ucVoid, std::uintptr_t stackLo,
                                std::uintptr_t stackHi, std::uintptr_t* out,
                                int maxFrames)
{
    const ucontext_t* uc = static_cast<const ucontext_t*>(ucVoid);
    std::uintptr_t pc = 0;
    std::uintptr_t fp = 0;
#if defined(__x86_64__)
    pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
    fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
    pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
    fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
    (void)uc;
#endif
    if (pc == 0)
        return 0;
    int n = 0;
    out[n++] = pc;
    if (stackLo == 0 || stackHi == 0)
        return static_cast<std::uint16_t>(n);
    std::uintptr_t frame = fp;
    while (n < maxFrames) {
        if (frame < stackLo || frame + 2 * sizeof(std::uintptr_t) > stackHi ||
            (frame & (sizeof(std::uintptr_t) - 1)) != 0)
            break;
        const std::uintptr_t* slots =
            reinterpret_cast<const std::uintptr_t*>(frame);
        const std::uintptr_t nextFrame = slots[0];
        const std::uintptr_t returnAddr = slots[1];
        if (returnAddr < 4096)
            break;
        out[n++] = returnAddr;
        if (nextFrame <= frame)
            break;
        frame = nextFrame;
    }
    return static_cast<std::uint16_t>(n);
}

void sigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* ucontext)
{
    const int savedErrno = errno;
    ThreadState* state = tlsState;
    if (state != nullptr && gRunning.load(std::memory_order_relaxed)) {
        RawSample sample;
        sample.depth = unwindFromContext(ucontext, state->stackLo,
                                         state->stackHi, sample.pcs,
                                         kMaxSampleFrames);
        if (sample.depth > 0)
            state->ring.push(sample);
    }
    errno = savedErrno;
}

void captureStackBounds(ThreadState* state)
{
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) != 0)
        return;
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0 && addr != nullptr) {
        state->stackLo = reinterpret_cast<std::uintptr_t>(addr);
        state->stackHi = state->stackLo + size;
    }
    pthread_attr_destroy(&attr);
}

#endif // __linux__

std::string formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", value);
    return buf;
}

} // namespace

struct CpuProfiler::Impl
{
    mutable std::mutex mutex;
    std::vector<std::shared_ptr<ThreadState>> threads;
    /** thread name → (leaf-first stack → sample count). */
    std::map<std::string, std::map<std::vector<std::uintptr_t>, std::uint64_t>>
        aggregate;
    std::uint64_t aggregateSamples = 0;
    std::uint64_t retiredDropped = 0;
    CpuProfilerOptions options;
    bool running = false;
    double activeMs = 0.0;
    std::chrono::steady_clock::time_point sessionStart{};
    std::thread drainer;
    std::condition_variable drainCv;
    bool stopDrainer = false;

    void drainAllLocked()
    {
        for (const auto& state : threads) {
            RawSample sample;
            while (state->ring.pop(&sample)) {
                std::vector<std::uintptr_t> key(sample.pcs,
                                                sample.pcs + sample.depth);
                ++aggregate[state->name][key];
                ++aggregateSamples;
            }
        }
    }

    double sessionElapsedMsLocked() const
    {
        if (!running)
            return 0.0;
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - sessionStart)
            .count();
    }

    std::uint64_t droppedLocked() const
    {
        std::uint64_t total = retiredDropped;
        for (const auto& state : threads)
            total += state->ring.dropped();
        return total;
    }

#if defined(__linux__)
    bool armThreadLocked(ThreadState* state)
    {
        if (!state->timerCreated) {
            clockid_t clock;
            if (pthread_getcpuclockid(state->pthread, &clock) != 0)
                return false;
            struct sigevent sev;
            std::memset(&sev, 0, sizeof(sev));
            sev.sigev_notify = SIGEV_THREAD_ID;
            sev.sigev_signo = SIGPROF;
            sev.sigev_notify_thread_id = state->tid;
            if (timer_create(clock, &sev, &state->timer) != 0)
                return false;
            state->timerCreated = true;
        }
        const double periodSec = 1.0 / options.hz;
        struct itimerspec spec;
        spec.it_interval.tv_sec = static_cast<time_t>(periodSec);
        spec.it_interval.tv_nsec =
            static_cast<long>((periodSec - spec.it_interval.tv_sec) * 1e9);
        if (spec.it_interval.tv_sec == 0 && spec.it_interval.tv_nsec < 100000)
            spec.it_interval.tv_nsec = 100000; // floor: 10 kHz
        spec.it_value = spec.it_interval;
        return timer_settime(state->timer, 0, &spec, nullptr) == 0;
    }

    void disarmThreadLocked(ThreadState* state)
    {
        if (state->timerCreated) {
            timer_delete(state->timer);
            state->timerCreated = false;
        }
    }
#endif
};

CpuProfiler::CpuProfiler() : impl_(new Impl) {}

CpuProfiler& CpuProfiler::instance()
{
    // Leaked intentionally: worker threads may unregister during static
    // destruction and must find the registry alive.
    static CpuProfiler* inst = new CpuProfiler();
    return *inst;
}

bool CpuProfiler::supported()
{
#if defined(__linux__) && (defined(__x86_64__) || defined(__aarch64__))
    return true;
#else
    return false;
#endif
}

void CpuProfiler::registerCurrentThread(const std::string& name)
{
#if defined(__linux__)
    if (tlsState != nullptr)
        return; // already registered
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto state =
        std::make_shared<ThreadState>(name, impl_->options.ringCapacity);
    state->pthread = pthread_self();
    state->tid = static_cast<pid_t>(::syscall(SYS_gettid));
    captureStackBounds(state.get());
    impl_->threads.push_back(state);
    tlsState = state.get();
    if (impl_->running)
        impl_->armThreadLocked(state.get());
#else
    (void)name;
#endif
}

void CpuProfiler::unregisterCurrentThread()
{
#if defined(__linux__)
    ThreadState* state = tlsState;
    if (state == nullptr)
        return;
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->disarmThreadLocked(state);
    tlsState = nullptr;
    // Everything after this fence runs with no further handler activity
    // on this thread (the handler runs on this thread and sees the
    // null), so draining and freeing the ring is race-free.
    std::atomic_signal_fence(std::memory_order_seq_cst);
    RawSample sample;
    while (state->ring.pop(&sample)) {
        std::vector<std::uintptr_t> key(sample.pcs, sample.pcs + sample.depth);
        ++impl_->aggregate[state->name][key];
        ++impl_->aggregateSamples;
    }
    impl_->retiredDropped += state->ring.dropped();
    auto& threads = impl_->threads;
    threads.erase(std::remove_if(threads.begin(), threads.end(),
                                 [state](const auto& entry) {
                                     return entry.get() == state;
                                 }),
                  threads.end());
#endif
}

bool CpuProfiler::start(const CpuProfilerOptions& options)
{
    if (!supported())
        return false;
#if defined(__linux__)
    std::unique_lock<std::mutex> lock(impl_->mutex);
    if (impl_->running)
        return true;
    impl_->options = options;
    impl_->options.hz = std::clamp(options.hz, 1.0, 10000.0);
    impl_->options.drainIntervalMs = std::max(options.drainIntervalMs, 5.0);

    static std::once_flag handlerOnce;
    std::call_once(handlerOnce, [] {
        struct sigaction action;
        std::memset(&action, 0, sizeof(action));
        action.sa_sigaction = sigprofHandler;
        action.sa_flags = SA_SIGINFO | SA_RESTART;
        sigemptyset(&action.sa_mask);
        ::sigaction(SIGPROF, &action, nullptr);
    });

    gRunning.store(true, std::memory_order_release);
    for (const auto& state : impl_->threads)
        impl_->armThreadLocked(state.get());
    impl_->running = true;
    impl_->sessionStart = std::chrono::steady_clock::now();
    impl_->stopDrainer = false;
    const double intervalMs = impl_->options.drainIntervalMs;
    impl_->drainer = std::thread([this, intervalMs] {
        std::unique_lock<std::mutex> drainLock(impl_->mutex);
        while (!impl_->stopDrainer) {
            impl_->drainCv.wait_for(
                drainLock,
                std::chrono::duration<double, std::milli>(intervalMs),
                [this] { return impl_->stopDrainer; });
            impl_->drainAllLocked();
        }
    });
    return true;
#else
    return false;
#endif
}

void CpuProfiler::stop()
{
#if defined(__linux__)
    std::thread drainer;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        if (!impl_->running)
            return;
        gRunning.store(false, std::memory_order_release);
        for (const auto& state : impl_->threads)
            impl_->disarmThreadLocked(state.get());
        impl_->activeMs += impl_->sessionElapsedMsLocked();
        impl_->running = false;
        impl_->stopDrainer = true;
        impl_->drainAllLocked();
        drainer = std::move(impl_->drainer);
    }
    impl_->drainCv.notify_all();
    if (drainer.joinable())
        drainer.join();
#endif
}

bool CpuProfiler::running() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->running;
}

CpuProfilerStatus CpuProfiler::status() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    CpuProfilerStatus st;
    st.supported = supported();
    st.running = impl_->running;
    st.hz = impl_->running ? impl_->options.hz : 0.0;
    st.threads = static_cast<int>(impl_->threads.size());
    st.samples = impl_->aggregateSamples;
    st.dropped = impl_->droppedLocked();
    st.durationMs = impl_->activeMs + impl_->sessionElapsedMsLocked();
    return st;
}

ProfileSnapshot CpuProfiler::snapshot()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->drainAllLocked();
    ProfileSnapshot snap;
    snap.supported = supported();
    snap.running = impl_->running;
    snap.hz = impl_->options.hz;
    snap.durationMs = impl_->activeMs + impl_->sessionElapsedMsLocked();
    snap.samples = impl_->aggregateSamples;
    snap.dropped = impl_->droppedLocked();
    for (const auto& [thread, stacks] : impl_->aggregate) {
        for (const auto& [pcs, count] : stacks) {
            ProfileStack stack;
            stack.thread = thread;
            stack.pcs = pcs;
            stack.count = count;
            snap.stacks.push_back(std::move(stack));
        }
    }
    return snap;
}

void CpuProfiler::reset()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    // Discard buffered raw samples too, so post-reset dumps only cover
    // post-reset activity.
    for (const auto& state : impl_->threads) {
        RawSample sample;
        while (state->ring.pop(&sample)) {
        }
    }
    impl_->aggregate.clear();
    impl_->aggregateSamples = 0;
    impl_->retiredDropped = 0;
    impl_->activeMs = 0.0;
    if (impl_->running)
        impl_->sessionStart = std::chrono::steady_clock::now();
}

std::string CpuProfiler::handleCommand(const std::string& command)
{
    std::istringstream in(command);
    std::string verb;
    in >> verb;
    if (verb.empty())
        verb = "status";

    if (verb == "status") {
        const CpuProfilerStatus st = status();
        std::ostringstream out;
        out << "profiler: supported=" << (st.supported ? 1 : 0)
            << " running=" << (st.running ? 1 : 0) << " hz="
            << formatDouble(st.hz) << " threads=" << st.threads
            << " samples=" << st.samples << " dropped=" << st.dropped
            << " duration_ms=" << formatDouble(st.durationMs);
        return out.str();
    }
    if (verb == "start") {
        CpuProfilerOptions options;
        std::string hzToken;
        if (in >> hzToken) {
            char* end = nullptr;
            const double hz = std::strtod(hzToken.c_str(), &end);
            if (end == hzToken.c_str() || *end != '\0' || hz <= 0.0 ||
                hz > 10000.0)
                return "error: invalid sampling rate \"" + hzToken +
                       "\" (want 1..10000 Hz)";
            options.hz = hz;
        }
        if (running()) {
            const CpuProfilerStatus st = status();
            return "already running at " + formatDouble(st.hz) + " Hz";
        }
        if (!start(options))
            return "error: cpu profiler unsupported on this platform";
        const CpuProfilerStatus st = status();
        return "started at " + formatDouble(st.hz) + " Hz across " +
               std::to_string(st.threads) + " threads";
    }
    if (verb == "stop") {
        if (!running())
            return "not running";
        stop();
        const CpuProfilerStatus st = status();
        std::ostringstream out;
        out << "stopped after " << formatDouble(st.durationMs) << " ms; "
            << st.samples << " samples (" << st.dropped << " dropped)";
        return out.str();
    }
    if (verb == "folded" || verb == "dump")
        return renderFolded(snapshot());
    if (verb == "speedscope")
        return renderSpeedscope(snapshot());
    if (verb == "reset") {
        reset();
        return "reset";
    }
    return "error: unknown profilez command \"" + verb +
           "\" (want: status | start [hz] | stop | folded | speedscope | "
           "reset)";
}

std::string handleProfilezCommand(const std::string& command)
{
    return CpuProfiler::instance().handleCommand(command);
}

} // namespace tpc::obs::prof
