/**
 * @file
 * Lock-free single-producer/single-consumer ring of raw stack samples.
 *
 * The producer is a SIGPROF handler interrupting the ring's owning
 * thread; the consumer is the profiler's background drainer. push() is
 * async-signal-safe: no locks, no allocation, just a bounded-capacity
 * check and two relaxed/release atomics. When the drainer falls behind,
 * samples are dropped (and counted) rather than ever blocking the
 * interrupted thread — a profiler that perturbs the profiled tail is
 * worse than one that loses samples.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace tpc::obs::prof {

/** Deepest stack a sample can carry; deeper frames are truncated. */
inline constexpr int kMaxSampleFrames = 48;

/** One raw sample: program counters leaf-first, no symbolization. */
struct RawSample
{
    std::uint16_t depth = 0;
    std::uintptr_t pcs[kMaxSampleFrames];
};

/**
 * Bounded SPSC ring. The capacity is rounded up to a power of two so
 * the index math stays two masked adds. All slots are allocated up
 * front — the signal handler never touches the allocator.
 */
class SampleRing
{
  public:
    explicit SampleRing(std::size_t capacity = 4096)
    {
        std::size_t rounded = 1;
        while (rounded < capacity)
            rounded <<= 1;
        slots_.resize(rounded);
        mask_ = rounded - 1;
    }

    SampleRing(const SampleRing&) = delete;
    SampleRing& operator=(const SampleRing&) = delete;

    /**
     * Producer side (async-signal-safe). Returns false — and counts the
     * drop — when the ring is full.
     */
    bool push(const RawSample& sample)
    {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        if (head - tail_.load(std::memory_order_acquire) >= slots_.size()) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        slots_[head & mask_] = sample;
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. Returns false when the ring is empty. */
    bool pop(RawSample* out)
    {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (tail == head_.load(std::memory_order_acquire))
            return false;
        *out = slots_[tail & mask_];
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Samples lost to a full ring since construction (monotonic). */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Samples currently buffered (racy snapshot, consumer-side view). */
    std::size_t size() const
    {
        return static_cast<std::size_t>(
            head_.load(std::memory_order_acquire) -
            tail_.load(std::memory_order_relaxed));
    }

    std::size_t capacity() const { return slots_.size(); }

  private:
    std::vector<RawSample> slots_;
    std::size_t mask_ = 0;
    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> tail_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

} // namespace tpc::obs::prof
