/**
 * @file
 * Always-available sampling CPU profiler.
 *
 * Design (Linux): each thread that wants to be profiled registers via a
 * ThreadProfileScope. Registration creates a per-thread POSIX timer on
 * the thread's CPU-time clock (timer_create(CLOCK_THREAD_CPUTIME_ID))
 * delivering SIGPROF to exactly that thread, plus a lock-free SPSC
 * SampleRing the signal handler pushes raw frame-pointer stacks into.
 * The handler is async-signal-safe: unwind registers from the ucontext,
 * walk frame pointers within the thread's stack bounds, push into the
 * ring — no locks, no allocation, no symbolization.
 *
 * start(hz) arms every registered thread's timer; a background drainer
 * folds ring contents into per-thread (stack → count) maps every few
 * tens of milliseconds. stop() disarms timers but keeps the aggregate,
 * so dump-after-stop works. Symbolization (dladdr + demangle) happens
 * only at export time.
 *
 * Threads sample on *CPU time*, so an idle event loop costs nothing:
 * a blocked thread's CPU clock does not advance and its timer never
 * fires. That is what makes the profiler safe to leave compiled into
 * every server.
 *
 * On non-Linux platforms the profiler compiles but start() fails with
 * supported() == false; registration is a cheap no-op.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/prof/profile.h"

namespace tpc::obs::prof {

struct CpuProfilerOptions
{
    /** Sampling frequency per thread, in Hz. 99 avoids lockstep with
     *  10ms-aligned periodic work (the classic perf default). */
    double hz = 99.0;
    /** Per-thread ring capacity in samples (rounded up to 2^k). */
    std::size_t ringCapacity = 4096;
    /** Drainer cadence. */
    double drainIntervalMs = 50.0;
};

/** Profiler status summary (cheap, for /statsz-style reporting). */
struct CpuProfilerStatus
{
    bool supported = false;
    bool running = false;
    double hz = 0.0;
    int threads = 0;
    std::uint64_t samples = 0;
    std::uint64_t dropped = 0;
    double durationMs = 0.0;
};

/**
 * Process-wide singleton. All methods are thread-safe; none may be
 * called from a signal handler.
 */
class CpuProfiler
{
  public:
    static CpuProfiler& instance();

    /** True when the platform supports per-thread CPU-time timers. */
    static bool supported();

    /**
     * Registers the calling thread for sampling under `name`. If the
     * profiler is already running the thread starts sampling
     * immediately. Prefer ThreadProfileScope over calling this
     * directly.
     */
    void registerCurrentThread(const std::string& name);

    /**
     * Unregisters the calling thread: disarms and deletes its timer,
     * drains its remaining samples into the aggregate (attributed to
     * its name), and frees the ring. Must be called on the same thread
     * that registered.
     */
    void unregisterCurrentThread();

    /**
     * Starts sampling on every registered thread. Returns false when
     * the platform is unsupported; returns true (and leaves the rate
     * unchanged) when already running. Clears nothing: successive
     * start/stop cycles accumulate until reset().
     */
    bool start(const CpuProfilerOptions& options = {});

    /** Disarms all timers and folds in any buffered samples. */
    void stop();

    bool running() const;

    CpuProfilerStatus status() const;

    /** Aggregated profile since the last reset() (drains rings first). */
    ProfileSnapshot snapshot();

    /** Discards all accumulated stacks and counters. */
    void reset();

    /**
     * Text command interface backing the /profilez admin frame and the
     * statsz CLI. Commands: "status" (default for empty input),
     * "start" / "start <hz>", "stop", "folded" (alias "dump"),
     * "speedscope", "reset". Invalid input yields a body starting with
     * "error: " — transport stays kOk, callers branch on the prefix.
     */
    std::string handleCommand(const std::string& command);

  private:
    CpuProfiler();
    ~CpuProfiler() = delete;

    struct Impl;
    Impl* impl_;
};

/**
 * RAII registration of the current thread with the process profiler.
 * Place at the top of a thread's main function.
 */
class ThreadProfileScope
{
  public:
    explicit ThreadProfileScope(const std::string& name)
    {
        CpuProfiler::instance().registerCurrentThread(name);
    }
    ~ThreadProfileScope() { CpuProfiler::instance().unregisterCurrentThread(); }

    ThreadProfileScope(const ThreadProfileScope&) = delete;
    ThreadProfileScope& operator=(const ThreadProfileScope&) = delete;
};

/** Convenience forwarder: CpuProfiler::instance().handleCommand(). */
std::string handleProfilezCommand(const std::string& command);

} // namespace tpc::obs::prof
