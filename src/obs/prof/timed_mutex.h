/**
 * @file
 * Lock-wait instrumentation for contended mutexes.
 *
 * timedLock() wraps `std::mutex` acquisition with a try_lock fast path:
 * an uncontended acquire costs one atomic CAS plus one relaxed counter
 * increment, while a contended acquire is timed and recorded into a
 * LockWaitStats (atomic counters + a mutex-guarded LogHistogram and an
 * optional MetricsRegistry histogram). The mutex type stays plain
 * `std::mutex` so condition_variable users keep working unchanged —
 * this deliberately instruments the *call sites*, not the mutex.
 */
#pragma once

#include <chrono>
#include <mutex>

#include "obs/metrics.h"
#include "stats/histogram.h"

namespace tpc::obs::prof {

/** Shared wait accounting for one logical lock (e.g. a queue mutex). */
class LockWaitStats
{
  public:
    /** Point the stats at a metrics histogram (may be null). */
    void attachMetrics(obs::Histogram* waitHistogram)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        metric_ = waitHistogram;
    }

    void recordUncontended()
    {
        acquisitions_.fetch_add(1, std::memory_order_relaxed);
    }

    void recordContended(double waitMs)
    {
        acquisitions_.fetch_add(1, std::memory_order_relaxed);
        contended_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mutex_);
        waits_.add(waitMs);
        if (metric_ != nullptr)
            metric_->add(waitMs);
    }

    std::uint64_t acquisitions() const
    {
        return acquisitions_.load(std::memory_order_relaxed);
    }

    std::uint64_t contended() const
    {
        return contended_.load(std::memory_order_relaxed);
    }

    /** Copy of the contended-wait histogram (ms). */
    stats::LogHistogram waitHistogram() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return waits_;
    }

  private:
    std::atomic<std::uint64_t> acquisitions_{0};
    std::atomic<std::uint64_t> contended_{0};
    mutable std::mutex mutex_;
    // Sub-microsecond resolution: lock waits live well below the
    // latency histograms' default 10 µs floor.
    stats::LogHistogram waits_{0.0001, 10000.0, 1.05};
    obs::Histogram* metric_ = nullptr;
};

/**
 * Acquires `mutex`, recording the wait into `stats`. Returns the held
 * unique_lock so call sites read
 * `auto lock = prof::timedLock(mutex_, lockWait_);` in place of
 * `std::unique_lock<std::mutex> lock(mutex_);`.
 */
inline std::unique_lock<std::mutex> timedLock(std::mutex& mutex,
                                              LockWaitStats& stats)
{
    std::unique_lock<std::mutex> lock(mutex, std::try_to_lock);
    if (lock.owns_lock()) {
        stats.recordUncontended();
        return lock;
    }
    const auto start = std::chrono::steady_clock::now();
    lock.lock();
    const double waitMs = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    stats.recordContended(waitMs);
    return lock;
}

} // namespace tpc::obs::prof
