#include "obs/prof/profile.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#if defined(__linux__) || defined(__APPLE__)
#include <cxxabi.h>
#include <dlfcn.h>
#define TPC_PROF_HAVE_DLADDR 1
#endif

namespace tpc::obs::prof {

namespace {

std::string hexAddress(std::uintptr_t pc)
{
    char buf[2 + sizeof(std::uintptr_t) * 2 + 1];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(pc));
    return buf;
}

#if TPC_PROF_HAVE_DLADDR
std::string resolveUncached(std::uintptr_t pc)
{
    Dl_info info{};
    if (dladdr(reinterpret_cast<void*>(pc), &info) == 0)
        return hexAddress(pc);
    if (info.dli_sname != nullptr) {
        int status = 0;
        char* demangled =
            abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
        if (status == 0 && demangled != nullptr) {
            std::string name(demangled);
            std::free(demangled);
            return name;
        }
        return info.dli_sname;
    }
    if (info.dli_fname != nullptr) {
        // Inside a known object but no covering symbol: name the object
        // plus the offset so frames from the same image still fold.
        std::string file(info.dli_fname);
        const std::size_t slash = file.find_last_of('/');
        if (slash != std::string::npos)
            file = file.substr(slash + 1);
        const auto base = reinterpret_cast<std::uintptr_t>(info.dli_fbase);
        return file + "+" + hexAddress(pc >= base ? pc - base : pc);
    }
    return hexAddress(pc);
}
#endif

} // namespace

SymbolResolver defaultSymbolResolver()
{
#if TPC_PROF_HAVE_DLADDR
    struct Cache
    {
        std::mutex mutex;
        std::unordered_map<std::uintptr_t, std::string> names;
    };
    auto cache = std::make_shared<Cache>();
    return [cache](std::uintptr_t pc) {
        std::lock_guard<std::mutex> lock(cache->mutex);
        auto it = cache->names.find(pc);
        if (it != cache->names.end())
            return it->second;
        std::string name = resolveUncached(pc);
        cache->names.emplace(pc, name);
        return name;
    };
#else
    return [](std::uintptr_t pc) { return hexAddress(pc); };
#endif
}

std::string jsonEscape(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (unsigned char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string renderFolded(const ProfileSnapshot& snapshot,
                         const SymbolResolver& resolve)
{
    // Fold by symbolized stack, not raw pcs: distinct return addresses
    // within one function collapse into one flamegraph frame.
    std::map<std::string, std::uint64_t> folded;
    for (const ProfileStack& stack : snapshot.stacks) {
        std::string line = stack.thread;
        for (auto it = stack.pcs.rbegin(); it != stack.pcs.rend(); ++it) {
            line += ';';
            line += resolve(*it);
        }
        folded[line] += stack.count;
    }
    std::string out;
    for (const auto& [line, count] : folded) {
        out += line;
        out += ' ';
        out += std::to_string(count);
        out += '\n';
    }
    return out;
}

std::string renderSpeedscope(const ProfileSnapshot& snapshot,
                             const SymbolResolver& resolve)
{
    // Shared frame table with dedup by display name.
    std::vector<std::string> frames;
    std::unordered_map<std::string, std::size_t> frameIndex;
    auto internFrame = [&](std::uintptr_t pc) {
        std::string name = resolve(pc);
        auto it = frameIndex.find(name);
        if (it != frameIndex.end())
            return it->second;
        const std::size_t index = frames.size();
        frames.push_back(name);
        frameIndex.emplace(std::move(name), index);
        return index;
    };

    struct ThreadProfile
    {
        std::vector<std::vector<std::size_t>> samples;
        std::vector<std::uint64_t> weights;
        std::uint64_t total = 0;
    };
    // std::map for deterministic thread ordering in the output.
    std::map<std::string, ThreadProfile> byThread;
    for (const ProfileStack& stack : snapshot.stacks) {
        ThreadProfile& tp = byThread[stack.thread];
        std::vector<std::size_t> sample;
        sample.reserve(stack.pcs.size());
        // speedscope wants root-first; pcs are leaf-first.
        for (auto it = stack.pcs.rbegin(); it != stack.pcs.rend(); ++it)
            sample.push_back(internFrame(*it));
        tp.samples.push_back(std::move(sample));
        tp.weights.push_back(stack.count);
        tp.total += stack.count;
    }

    std::ostringstream out;
    out << "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\","
        << "\"exporter\":\"tpc-prof\",\"name\":\"tpc cpu profile\","
        << "\"activeProfileIndex\":0,\"shared\":{\"frames\":[";
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (i != 0)
            out << ',';
        out << "{\"name\":\"" << jsonEscape(frames[i]) << "\"}";
    }
    out << "]},\"profiles\":[";
    bool firstProfile = true;
    for (const auto& [thread, tp] : byThread) {
        if (!firstProfile)
            out << ',';
        firstProfile = false;
        out << "{\"type\":\"sampled\",\"name\":\"" << jsonEscape(thread)
            << "\",\"unit\":\"none\",\"startValue\":0,\"endValue\":" << tp.total
            << ",\"samples\":[";
        for (std::size_t i = 0; i < tp.samples.size(); ++i) {
            if (i != 0)
                out << ',';
            out << '[';
            for (std::size_t j = 0; j < tp.samples[i].size(); ++j) {
                if (j != 0)
                    out << ',';
                out << tp.samples[i][j];
            }
            out << ']';
        }
        out << "],\"weights\":[";
        for (std::size_t i = 0; i < tp.weights.size(); ++i) {
            if (i != 0)
                out << ',';
            out << tp.weights[i];
        }
        out << "]}";
    }
    // An empty profile set still needs one (empty) profile so the file
    // loads in speedscope instead of failing schema validation.
    if (firstProfile) {
        out << "{\"type\":\"sampled\",\"name\":\"(no samples)\",\"unit\":\"none\","
            << "\"startValue\":0,\"endValue\":0,\"samples\":[],\"weights\":[]}";
    }
    out << "]}";
    return out.str();
}

} // namespace tpc::obs::prof
