/**
 * @file
 * Plain-text Prometheus-exposition rendering of a server's live state.
 *
 * renderStatsz() turns a StageSnapshot plus a caller-filled StatszInfo
 * (policy identity, target table, scheduler counters, worker occupancy,
 * admission counters) into the text format every metrics scraper parses:
 * `# HELP` / `# TYPE` comments followed by `name{labels} value` samples.
 * The renderer is pure string building over an immutable snapshot — no
 * locks, no allocation proportional to traffic — so the RPC event loop
 * can serve /statsz while saturated.
 *
 * StatszInfo mirrors the bits of policy / net state the dump needs as
 * plain values, keeping this module free of dependencies on those layers
 * (obs sits below both).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/fanout_stats.h"
#include "obs/proc_stats.h"
#include "obs/stage_stats.h"
#include "stats/histogram.h"

namespace tpc::obs {

/** One (load, target E) row of the policy's target table. */
struct StatszTargetEntry
{
    double load = 0.0;
    double targetMs = 0.0;
};

/**
 * Closed-loop adaptation state rendered as a /statsz lane. Layer-neutral
 * mirror of adapt::AdaptationStats (obs sits below src/adapt), filled by
 * the example servers when --adapt is on.
 */
struct StatszAdaptationInfo
{
    std::uint64_t tableVersion = 0;
    /** "offline" or "adapted". */
    std::string tableSource;
    /** "shadowing", "holding" or "cooldown". */
    std::string state;
    bool hasCandidate = false;
    double activeScore = 0.0;
    double candidateScore = 0.0;
    int consecutiveWins = 0;
    std::uint64_t windowsEvaluated = 0;
    std::uint64_t refits = 0;
    std::uint64_t promotions = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t lastWindowCompletions = 0;
    double lastWindowP99Ms = 0.0;
    double lastWindowMissPct = 0.0;
};

/**
 * Online-retraining predictor state rendered as a /statsz lane.
 * Layer-neutral mirror of predict::RetrainerStats (obs sits below
 * src/predict), filled by the example servers when --retrain is on.
 */
struct StatszPredictorInfo
{
    std::uint64_t modelVersion = 0;
    /** "offline" or "retrained". */
    std::string modelSource;
    /** "monitoring", "holding" or "cooldown". */
    std::string state;
    bool hasCandidate = false;
    std::uint64_t windowsEvaluated = 0;
    std::uint64_t driftWindows = 0;
    std::uint64_t retrains = 0;
    std::uint64_t promotions = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t bufferedSamples = 0;
    double lastWindowErrP50 = 0.0;
    double lastWindowErrQuantile = 0.0;
    double baselineErrQuantile = 0.0;
    double activeShadowMae = 0.0;
    double candidateShadowMae = 0.0;
    double activeShadowRecall = 0.0;
    double candidateShadowRecall = 0.0;
    int consecutiveWins = 0;
    std::uint64_t lastWindowCompletions = 0;
};

/**
 * Event-loop health rendered as a /statsz lane. Layer-neutral mirror of
 * net::LoopHealthSnapshot (obs sits below src/net), filled by servers
 * that run an event loop.
 */
struct StatszLoopHealthInfo
{
    std::uint64_t wakeups = 0;
    std::uint64_t wakeDrains = 0;
    std::uint64_t loopIterations = 0;
    /** Per-iteration work time (poll return → dispatch done), ms. */
    stats::LogHistogram iterWorkMs{0.0001, 100000.0, 1.05};
    /** Completion post → response dispatch latency, ms. */
    stats::LogHistogram wakeDispatchMs{0.0001, 100000.0, 1.05};
};

/** Dispatch-queue lock contention rendered as a /statsz lane (mirror of
 *  prof::LockWaitStats as plain values). */
struct StatszLockWaitInfo
{
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
    /** Contended-wait quantiles, ms. */
    stats::LogHistogram waitMs{0.0001, 10000.0, 1.05};
};

/** CPU-profiler status rendered as a /statsz lane. */
struct StatszProfilerInfo
{
    bool supported = false;
    bool running = false;
    double hz = 0.0;
    int threads = 0;
    std::uint64_t samples = 0;
    std::uint64_t dropped = 0;
    double durationMs = 0.0;
};

/**
 * One tenant's weighted-admission lane. Layer-neutral mirror of
 * overload::TenantAdmissionSnapshot (obs sits below src/overload);
 * filled by servers running per-tenant weighted-fair admission.
 */
struct StatszTenantInfo
{
    std::uint16_t tenant = 0;
    std::string name;
    double weight = 0.0;
    /** In-flight slots this tenant is guaranteed under contention. */
    int guarantee = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    /** OK responses delivered for this tenant (its goodput count). */
    std::uint64_t goodput = 0;
    int inFlight = 0;
};

/** Caller-supplied server state rendered alongside the stage snapshot. */
struct StatszInfo
{
    /** Policy name() — becomes the `policy` label on tpc_up. */
    std::string policyName;
    /** Target table rows; empty for policies without one. */
    std::vector<StatszTargetEntry> targetTable;
    /** Version of the table serving decisions consume (0 = static
     *  table) and its provenance ("offline"/"adapted"). */
    std::uint64_t tableVersion = 0;
    std::string tableSource;
    /** Adaptation lane; rendered when non-null (borrowed). */
    const StatszAdaptationInfo* adaptation = nullptr;
    /** Version of the live predictor model the dispatch path consumes
     *  (0 = predictions precomputed with the job) and its provenance
     *  ("offline"/"retrained"). */
    std::uint64_t modelVersion = 0;
    std::string modelSource;
    /** Predictor retraining lane; rendered when non-null (borrowed). */
    const StatszPredictorInfo* predictor = nullptr;
    std::uint64_t dispatches = 0;
    std::uint64_t corrections = 0;
    std::uint64_t correctionThreadsAdded = 0;
    int totalWorkers = 0;
    int busyWorkers = 0;
    int queueDepth = 0;
    /** Admission counters; all zero when serving without admission. */
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t inFlight = 0;
    /** Admitted requests cancelled before dispatch (server-side deadline
     *  expiry) — distinct from admission sheds. */
    std::uint64_t cancelled = 0;
    /** Requests rejected (or retired) because their end-to-end deadline
     *  budget was exhausted — the earliest-hop rejection counter. */
    std::uint64_t deadlineExceeded = 0;
    /** Per-tenant weighted-admission lanes; empty when admission is not
     *  tenant-aware (no per-tenant series rendered). */
    std::vector<StatszTenantInfo> tenants;
    /** Queued requests retired because their connection died. */
    std::uint64_t disconnectsRetired = 0;
    /** Faults fired by an attached injector (0 without one). */
    std::uint64_t faultsInjected = 0;
    /** TraceRecorder::droppedEvents() when tracing, else 0. */
    std::uint64_t droppedTraceEvents = 0;
    double uptimeMs = 0.0;
    /** Event-loop health lane; rendered when non-null (borrowed). */
    const StatszLoopHealthInfo* loopHealth = nullptr;
    /** Scheduler-lock contention lane; rendered when non-null. */
    const StatszLockWaitInfo* lockWait = nullptr;
    /** Process resource gauges; rendered when non-null (borrowed). */
    const ProcStats* proc = nullptr;
    /** CPU-profiler status lane; rendered when non-null (borrowed). */
    const StatszProfilerInfo* profiler = nullptr;
    /** Per-worker cumulative busy ms (occupancy timeline); empty when
     *  the server exposes none. */
    std::vector<double> workerBusyMs;
};

/**
 * Incremental builder for the exposition text. Metric names should be
 * `[a-zA-Z_:][a-zA-Z0-9_:]*`; label values are escaped per the format
 * spec (backslash, double quote, newline).
 */
class PrometheusWriter
{
  public:
    /** Emits the `# HELP` and `# TYPE` header for a metric. */
    void header(const std::string& name, const std::string& help,
                const std::string& type);

    /** Emits one sample; @p labels are preformatted `k="v"` pairs. */
    void sample(const std::string& name,
                const std::vector<std::string>& labels, double value);

    void sample(const std::string& name,
                const std::vector<std::string>& labels,
                std::uint64_t value);

    /** Appends preformatted text (e.g. comment lines) verbatim. */
    void raw(const std::string& text) { out_ += text; }

    /** Formats one `key="escaped(value)"` label pair. */
    static std::string label(const std::string& key,
                             const std::string& value);

    const std::string& text() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/**
 * Renders the full /statsz dump. @p stages may be null (no stage stats
 * attached) — the policy/admission/occupancy sections still render, so
 * the endpoint always answers with valid exposition text.
 */
std::string renderStatsz(const StatszInfo& info,
                         const StageSnapshot* stages);

/**
 * Same, with an aggregator lane appended when @p fanout is non-null:
 * per-shard reply-latency quantiles, hedge counters (issued/won/wasted),
 * and straggler-cause attribution, so /statsz on an aggregator explains
 * cross-tier tails the same way it explains single-node ones.
 */
std::string renderStatsz(const StatszInfo& info, const StageSnapshot* stages,
                         const FanoutSnapshot* fanout);

} // namespace tpc::obs
