/**
 * @file
 * Low-overhead recorder of request-lifecycle TraceEvents.
 *
 * The recorder owns a fixed set of shards, each an independently locked
 * append buffer: the single-threaded SimServer records into shard 0, the
 * ThreadedServer spreads recording threads across shards (per-worker
 * buffers) so the hot path never contends on one lock. merged() combines
 * all shards into one time-ordered stream for export.
 *
 * Recording when disabled is a single relaxed atomic load, so a recorder
 * can stay attached to a server at negligible cost.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace_event.h"

namespace tpc::obs {

/** Sharded, thread-safe event recorder. */
class TraceRecorder
{
  public:
    /** @param shardCount Independent buffers (>= 1); size it to the number
     *                    of recording threads to avoid contention.
     *  @param shardCapacity Per-shard event limit; 0 means unbounded.
     *                    When a shard is full, further events are dropped
     *                    (never silently overwritten) and counted in
     *                    droppedEvents(). */
    explicit TraceRecorder(std::size_t shardCount = 1,
                           std::size_t shardCapacity = 0);

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    /** Toggles recording; record() calls while disabled are dropped. */
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /** Records into the shard chosen by the calling thread's id. */
    void record(const TraceEvent& event);

    /** Records into an explicit shard (callers with a natural index). */
    void recordShard(std::size_t shard, const TraceEvent& event);

    std::size_t shardCount() const { return shards_.size(); }

    /** Total events recorded so far (locks every shard). */
    std::uint64_t eventCount() const;

    /** Events rejected because their shard hit its capacity bound.
     *  Always 0 for unbounded recorders; a non-zero value means the
     *  trace is incomplete and the capacity should be raised. */
    std::uint64_t droppedEvents() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** All events from all shards, ordered by (timeMs, seq). */
    std::vector<TraceEvent> merged() const;

    /** Drops every recorded event (sequence numbers keep advancing). */
    void clear();

    /** Pre-allocates per-shard buffer capacity. */
    void reserve(std::size_t eventsPerShard);

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::vector<TraceEvent> events;
    };

    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t shardCapacity_ = 0;
    std::atomic<bool> enabled_{true};
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

} // namespace tpc::obs
