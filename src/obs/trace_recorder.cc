#include "obs/trace_recorder.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "util/logging.h"

namespace tpc::obs {

const char*
traceEventTypeName(TraceEventType type)
{
    switch (type) {
    case TraceEventType::kArrive:
        return "ARRIVE";
    case TraceEventType::kDispatch:
        return "DISPATCH";
    case TraceEventType::kRecheck:
        return "RECHECK";
    case TraceEventType::kCorrect:
        return "CORRECT";
    case TraceEventType::kComplete:
        return "COMPLETE";
    case TraceEventType::kNetAccept:
        return "NET_ACCEPT";
    case TraceEventType::kNetReceive:
        return "NET_RECEIVE";
    case TraceEventType::kNetRespond:
        return "NET_RESPOND";
    case TraceEventType::kNetShed:
        return "NET_SHED";
    }
    return "UNKNOWN";
}

TraceRecorder::TraceRecorder(std::size_t shardCount,
                             std::size_t shardCapacity)
    : shardCapacity_(shardCapacity)
{
    TPC_CHECK(shardCount >= 1);
    shards_.reserve(shardCount);
    for (std::size_t i = 0; i < shardCount; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

void
TraceRecorder::record(const TraceEvent& event)
{
    const std::size_t shard =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        shards_.size();
    recordShard(shard, event);
}

void
TraceRecorder::recordShard(std::size_t shard, const TraceEvent& event)
{
    if (!enabled())
        return;
    TPC_DCHECK(shard < shards_.size());
    TraceEvent stamped = event;
    stamped.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    Shard& s = *shards_[shard];
    std::lock_guard<std::mutex> lock(s.mutex);
    if (shardCapacity_ != 0 && s.events.size() >= shardCapacity_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    s.events.push_back(stamped);
}

std::uint64_t
TraceRecorder::eventCount() const
{
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->events.size();
    }
    return total;
}

std::vector<TraceEvent>
TraceRecorder::merged() const
{
    std::vector<TraceEvent> all;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        all.insert(all.end(), shard->events.begin(), shard->events.end());
    }
    std::sort(all.begin(), all.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  if (a.timeMs != b.timeMs)
                      return a.timeMs < b.timeMs;
                  return a.seq < b.seq;
              });
    return all;
}

void
TraceRecorder::clear()
{
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->events.clear();
    }
}

void
TraceRecorder::reserve(std::size_t eventsPerShard)
{
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->events.reserve(eventsPerShard);
    }
}

} // namespace tpc::obs
