/**
 * @file
 * Chrome trace-event JSON exporter: turns a merged TraceEvent stream into
 * a file that opens directly in Perfetto (ui.perfetto.dev) or
 * chrome://tracing.
 *
 * Layout: each server becomes a process (pid = serverId); inside it, lane
 * 0 carries ARRIVE instants (the queue) and lanes 1..k carry requests as
 * complete ("X") slices from DISPATCH to COMPLETE, packed greedily so
 * concurrent requests land on different lanes — the visual occupancy of
 * the worker pool. RECHECK and CORRECT render as instants on the owning
 * request's lane. DISPATCH metadata (predicted L, target E, chosen degree,
 * speedup row) travels in each slice's args.
 */
#pragma once

#include <string>
#include <vector>

#include "obs/trace_event.h"

namespace tpc::obs {

/** Renders the events as a Chrome trace-event JSON document. */
std::string chromeTraceJson(const std::vector<TraceEvent>& events);

/** Writes chromeTraceJson(events) to @p path (fatal on I/O failure). */
void writeChromeTrace(const std::vector<TraceEvent>& events,
                      const std::string& path);

} // namespace tpc::obs
