/**
 * @file
 * Named-metrics registry: counters, gauges and log-bucketed histograms,
 * plus periodic windowed snapshots exported to CSV.
 *
 * Counters and gauges are lock-free atomics; histograms wrap the O(1)-
 * memory stats::LogHistogram behind a mutex, and keep both a cumulative
 * and a current-window histogram so a snapshot can report per-window tail
 * percentiles (P50/P90/P99/P99.9) without rescanning samples. Metric
 * objects are owned by the registry and their references stay valid for
 * its lifetime, so hot paths resolve a metric once and then update it
 * without any map lookup.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "stats/latency_recorder.h"
#include "util/csv.h"

namespace tpc::obs {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value-wins instantaneous measurement (queue depth, idle workers). */
class Gauge
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Log-bucketed latency histogram with a resettable snapshot window. */
class Histogram
{
  public:
    Histogram(double minValue, double maxValue, double growthFactor);

    /** Records one observation into the window and the cumulative view. */
    void add(double value);

    /** Observations recorded since construction. */
    std::uint64_t count() const;

    /** Percentile summary over the full run so far. */
    stats::LatencySummary cumulativeSummary() const;

    /** Percentile summary of the current window, then resets the window. */
    stats::LatencySummary takeWindowSummary();

  private:
    static stats::LatencySummary summarize(const stats::LogHistogram& h);

    mutable std::mutex mutex_;
    stats::LogHistogram window_;
    stats::LogHistogram cumulative_;
};

/**
 * Get-or-create registry of named metrics. Thread-safe; registration
 * order is preserved and defines CSV column order.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);

    /** Bucketing parameters only apply on first registration. */
    Histogram& histogram(const std::string& name, double minValue = 0.01,
                         double maxValue = 100000.0,
                         double growthFactor = 1.02);

    std::vector<std::string> counterNames() const;
    std::vector<std::string> gaugeNames() const;
    std::vector<std::string> histogramNames() const;

  private:
    template <typename T>
    using NamedList = std::vector<std::pair<std::string, std::unique_ptr<T>>>;

    template <typename T, typename... Args>
    T& getOrCreate(NamedList<T>& list, const std::string& name,
                   Args&&... args);

    mutable std::mutex mutex_;
    NamedList<Counter> counters_;
    NamedList<Gauge> gauges_;
    NamedList<Histogram> histograms_;
};

/**
 * Writes one CSV row per metrics window: counter deltas, last gauge
 * values, and per-histogram window percentile summaries (formatted with
 * LatencySummary::toCsvRow). The column set is frozen at the first
 * writeWindow() call; metrics registered later are ignored.
 */
class MetricsCsvExporter
{
  public:
    MetricsCsvExporter(MetricsRegistry& registry, const std::string& path);

    /** Emits the window [windowStartMs, windowEndMs). */
    void writeWindow(double windowStartMs, double windowEndMs);

  private:
    void writeHeader();

    MetricsRegistry& registry_;
    util::CsvWriter csv_;
    bool headerWritten_ = false;
    std::vector<std::string> counterNames_;
    std::vector<std::string> gaugeNames_;
    std::vector<std::string> histogramNames_;
    std::map<std::string, std::uint64_t> lastCounterValues_;
};

} // namespace tpc::obs
