#include "obs/fanout_stats.h"

#include "util/logging.h"

namespace tpc::obs {

const char*
stragglerCauseName(StragglerCause cause)
{
    switch (cause) {
    case StragglerCause::kNone:
        return "none";
    case StragglerCause::kShardSlow:
        return "shard_slow";
    case StragglerCause::kShardShed:
        return "shard_shed";
    case StragglerCause::kHedgeWon:
        return "hedge_won";
    case StragglerCause::kShardTail:
        return "shard_tail";
    case StragglerCause::kShardDown:
        return "shard_down";
    }
    return "unknown";
}

StragglerCause
classifyStraggler(const FanoutRecord& record)
{
    if (record.targetMs <= 0.0 || record.responseMs <= record.targetMs)
        return StragglerCause::kNone;
    // A dead shard dominates everything else: the leg never had a path
    // to a reply, so the merge was degraded by construction.
    if (record.anyShardDown)
        return StragglerCause::kShardDown;
    // A leg with no usable reply is the severest failure: the client got
    // a partial result no hedge or merge could repair.
    if (record.anyDeadlineMiss)
        return StragglerCause::kShardSlow;
    if (record.anyShed)
        return StragglerCause::kShardShed;
    if (record.anyHedgeWin)
        return StragglerCause::kHedgeWon;
    return StragglerCause::kShardTail;
}

FanoutStatsCollector::FanoutStatsCollector(
    std::vector<std::string> classNames, std::vector<std::string> shardNames)
    : classNames_(std::move(classNames)), shardNames_(std::move(shardNames))
{
    if (classNames_.empty())
        classNames_.push_back("all");
    TPC_CHECK(!shardNames_.empty());
    classes_.resize(classNames_.size());
    for (std::size_t i = 0; i < classNames_.size(); ++i)
        classes_[i].name = classNames_[i];
    shards_.resize(shardNames_.size());
    for (std::size_t i = 0; i < shardNames_.size(); ++i)
        shards_[i].name = shardNames_[i];
}

void
FanoutStatsCollector::record(const FanoutRecord& record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    FanoutClassSnapshot& cls = classes_[clampClass(record.cls)];
    ++cls.completions;
    ++records_;
    cls.responseMs.add(record.responseMs);
    if (record.shardsTotal != 0) {
        cls.coveragePct.add(100.0 *
                            static_cast<double>(record.shardsAnswered) /
                            static_cast<double>(record.shardsTotal));
        if (record.shardsAnswered < record.shardsTotal)
            ++cls.degraded;
    }
    const StragglerCause cause = classifyStraggler(record);
    if (cause != StragglerCause::kNone) {
        ++cls.tail;
        ++cls.causes[static_cast<std::size_t>(cause)];
    }
}

void
FanoutStatsCollector::recordShardLatency(std::size_t shard, double latencyMs)
{
    TPC_DCHECK(shard < shards_.size());
    std::lock_guard<std::mutex> lock(mutex_);
    FanoutShardSnapshot& s = shards_[shard];
    ++s.replies;
    s.latencyMs.add(latencyMs);
}

void
FanoutStatsCollector::onHedgeIssued(std::size_t shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++shards_[shard].hedgeIssued;
}

void
FanoutStatsCollector::onHedgeWon(std::size_t shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++shards_[shard].hedgeWon;
}

void
FanoutStatsCollector::onHedgeWasted(std::size_t shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++shards_[shard].hedgeWasted;
}

void
FanoutStatsCollector::onShardShed(std::size_t shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++shards_[shard].shed;
}

void
FanoutStatsCollector::onDeadlineMiss(std::size_t shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++shards_[shard].deadlineMisses;
}

void
FanoutStatsCollector::onLateResponse(std::size_t shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++shards_[shard].lateResponses;
}

void
FanoutStatsCollector::onUnmatchedResponse()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++unmatchedResponses_;
}

void
FanoutStatsCollector::onShardRetryIssued(std::size_t shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++shards_[shard].retriesIssued;
}

void
FanoutStatsCollector::onShardRetrySuppressed(std::size_t shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++shards_[shard].retriesSuppressed;
}

void
FanoutStatsCollector::onShardRetrySuccess(std::size_t shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++shards_[shard].retrySuccesses;
}

void
FanoutStatsCollector::recordClientShed(std::uint32_t cls)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++classes_[clampClass(cls)].clientShed;
}

void
FanoutStatsCollector::recordDeadlineExceeded(std::uint32_t cls)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++classes_[clampClass(cls)].deadlineExceeded;
}

void
FanoutStatsCollector::recordMergeOverhead(double ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    mergeOverheadMs_.add(ms);
}

double
FanoutStatsCollector::mergeOverheadQuantile(double q,
                                            std::uint64_t minSamples) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (mergeOverheadMs_.count() < minSamples)
        return -1.0;
    return mergeOverheadMs_.percentile(q);
}

FanoutBreakerSnapshot&
FanoutStatsCollector::breakerLocked(const std::string& endpoint)
{
    for (FanoutBreakerSnapshot& b : breakers_)
        if (b.endpoint == endpoint)
            return b;
    FanoutBreakerSnapshot b;
    b.endpoint = endpoint;
    // Keep the vector sorted so snapshots render endpoints stably.
    auto it = breakers_.begin();
    while (it != breakers_.end() && it->endpoint < endpoint)
        ++it;
    return *breakers_.insert(it, std::move(b));
}

void
FanoutStatsCollector::onBreakerState(const std::string& endpoint, int state)
{
    std::lock_guard<std::mutex> lock(mutex_);
    FanoutBreakerSnapshot& b = breakerLocked(endpoint);
    if (state == 1 && b.state != 1)
        ++b.opened;
    if (state == 0 && b.state != 0)
        ++b.closed;
    b.state = state;
    if (state == 0)
        b.backoffMs = 0.0;
}

void
FanoutStatsCollector::onBreakerProbe(const std::string& endpoint)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++breakerLocked(endpoint).probes;
}

void
FanoutStatsCollector::onReconnectAttempt(const std::string& endpoint,
                                         double backoffMs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    FanoutBreakerSnapshot& b = breakerLocked(endpoint);
    ++b.reconnects;
    b.backoffMs = backoffMs;
}

double
FanoutStatsCollector::shardLatencyQuantile(std::size_t shard, double q,
                                           std::uint64_t minSamples) const
{
    TPC_DCHECK(shard < shards_.size());
    std::lock_guard<std::mutex> lock(mutex_);
    const FanoutShardSnapshot& s = shards_[shard];
    if (s.latencyMs.count() < minSamples)
        return -1.0;
    return s.latencyMs.percentile(q);
}

FanoutSnapshot
FanoutStatsCollector::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    FanoutSnapshot snap;
    snap.classes = classes_;
    snap.shards = shards_;
    snap.breakers = breakers_;
    snap.records = records_;
    snap.unmatchedResponses = unmatchedResponses_;
    snap.mergeOverheadMs = mergeOverheadMs_;
    return snap;
}

} // namespace tpc::obs
