#include "obs/span_collector.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#include "util/logging.h"

namespace tpc::obs {
namespace {

/** Appends a JSON-escaped string. Escapes quote and backslash; control
 *  characters are dropped (span names are ASCII identifiers; this is an
 *  export, not a transport). Mirrors the Chrome-trace exporter. */
void
appendEscaped(std::string& out, const char* text)
{
    for (const char* p = text; *p != '\0'; ++p) {
        const char c = *p;
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) >= 0x20) {
            out.push_back(c);
        }
    }
}

/** Appends a double with fixed 3 decimals (timestamps in microseconds;
 *  wall-clock values reach ~1.7e15 us, well inside the buffer). */
void
appendF3(std::string& out, double value)
{
    char buf[48];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value,
                                   std::chars_format::fixed, 3);
    TPC_CHECK(res.ec == std::errc());
    out.append(buf, res.ptr);
}

void
appendUint(std::string& out, std::uint64_t value)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    out.append(buf, res.ptr);
}

void
appendInt(std::string& out, std::int64_t value)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    out.append(buf, res.ptr);
}

/** Appends a 16-digit zero-padded lowercase hex id in quotes. */
void
appendHexId(std::string& out, std::uint64_t value)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "\"%016llx\"",
                  static_cast<unsigned long long>(value));
    out.append(buf);
}

} // namespace

const char*
spanKindName(SpanKind kind)
{
    switch (kind) {
    case SpanKind::kClient:
        return "client";
    case SpanKind::kServer:
        return "server";
    case SpanKind::kQueue:
        return "queue";
    case SpanKind::kExecute:
        return "execute";
    case SpanKind::kCorrection:
        return "correction";
    case SpanKind::kFanout:
        return "fanout";
    case SpanKind::kShardLeg:
        return "shard_leg";
    case SpanKind::kHedgeLeg:
        return "hedge_leg";
    }
    return "unknown";
}

bool
spanKindFromName(const char* name, SpanKind* out)
{
    static constexpr SpanKind kAll[] = {
        SpanKind::kClient,  SpanKind::kServer,   SpanKind::kQueue,
        SpanKind::kExecute, SpanKind::kCorrection, SpanKind::kFanout,
        SpanKind::kShardLeg, SpanKind::kHedgeLeg,
    };
    for (const SpanKind kind : kAll) {
        if (std::strcmp(name, spanKindName(kind)) == 0) {
            *out = kind;
            return true;
        }
    }
    return false;
}

SpanCollector::SpanCollector(std::size_t shardCount,
                             SpanCollectorConfig config)
    : config_(std::move(config))
{
    TPC_CHECK(shardCount >= 1);
    TPC_CHECK(config_.shardCapacity >= 1);
    TPC_CHECK(config_.retainedCapacity >= 1);
    shards_.reserve(shardCount);
    for (std::size_t i = 0; i < shardCount; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

std::uint64_t
SpanCollector::newSpanId()
{
    // Fold the process id into the high bits so ids minted by different
    // processes on one trace never collide.
    const std::uint64_t seq =
        nextSpanId_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t pid =
        static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(config_.serverId) + 1u);
    return (pid << 48) ^ seq;
}

SpanCollector::Shard&
SpanCollector::shardForThisThread()
{
    const std::size_t hash =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return *shards_[hash % shards_.size()];
}

void
SpanCollector::record(Span span)
{
    if (!enabled() || span.traceId == 0)
        return;
    span.serverId = config_.serverId;
    span.setRole(config_.role.c_str());
    Shard& shard = shardForThisThread();
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.ring.size() >= config_.shardCapacity) {
        shard.ring.pop_front();
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.ring.push_back(span);
}

void
SpanCollector::finishTrace(std::uint64_t traceId, std::uint32_t cls,
                           double responseMs, double targetMs)
{
    if (!enabled() || traceId == 0)
        return;
    const std::uint64_t seq =
        finished_.fetch_add(1, std::memory_order_relaxed);
    const bool over = targetMs > 0.0 && responseMs > targetMs;
    const bool sampled = config_.baselineSampleEvery > 0 &&
                         seq % config_.baselineSampleEvery == 0;
    if (!over && !sampled && !config_.retainAll)
        return; // The common case: spans age out of the rings unretained.

    RetainedTrace trace;
    trace.traceId = traceId;
    trace.cls = cls;
    trace.responseMs = responseMs;
    trace.targetMs = targetMs;
    trace.overTarget = over;
    trace.baseline = !over && sampled;
    for (auto& shardPtr : shards_) {
        Shard& shard = *shardPtr;
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto matches = [traceId](const Span& s) {
            return s.traceId == traceId;
        };
        for (const Span& span : shard.ring)
            if (matches(span))
                trace.spans.push_back(span);
        shard.ring.erase(std::remove_if(shard.ring.begin(),
                                        shard.ring.end(), matches),
                         shard.ring.end());
    }
    std::sort(trace.spans.begin(), trace.spans.end(),
              [](const Span& a, const Span& b) {
                  if (a.startMs != b.startMs)
                      return a.startMs < b.startMs;
                  return a.spanId < b.spanId;
              });

    retainedCount_.fetch_add(1, std::memory_order_relaxed);
    if (over)
        overTarget_.fetch_add(1, std::memory_order_relaxed);
    else if (sampled)
        baseline_.fetch_add(1, std::memory_order_relaxed);

    std::lock_guard<std::mutex> lock(retainedMutex_);
    if (retained_.size() >= config_.retainedCapacity)
        retained_.pop_front();
    retained_.push_back(std::move(trace));
}

std::vector<RetainedTrace>
SpanCollector::retained() const
{
    std::lock_guard<std::mutex> lock(retainedMutex_);
    return std::vector<RetainedTrace>(retained_.begin(), retained_.end());
}

std::string
SpanCollector::renderTracez(std::size_t maxTraces) const
{
    std::vector<RetainedTrace> traces = retained();
    if (maxTraces != 0 && traces.size() > maxTraces)
        traces.erase(traces.begin(),
                     traces.end() - static_cast<std::ptrdiff_t>(maxTraces));
    std::vector<Span> spans;
    for (const RetainedTrace& trace : traces)
        spans.insert(spans.end(), trace.spans.begin(), trace.spans.end());
    return assembleChromeTrace(spans);
}

void
SpanCollector::clear()
{
    for (auto& shardPtr : shards_) {
        std::lock_guard<std::mutex> lock(shardPtr->mutex);
        shardPtr->ring.clear();
    }
    std::lock_guard<std::mutex> lock(retainedMutex_);
    retained_.clear();
}

std::string
assembleChromeTrace(const std::vector<Span>& spans)
{
    // Sort by start so lane packing is a greedy sweep; keep the order
    // stable across processes by breaking ties on span id.
    std::vector<const Span*> ordered;
    ordered.reserve(spans.size());
    for (const Span& span : spans)
        ordered.push_back(&span);
    std::sort(ordered.begin(), ordered.end(),
              [](const Span* a, const Span* b) {
                  if (a->startMs != b->startMs)
                      return a->startMs < b->startMs;
                  return a->spanId < b->spanId;
              });

    std::string out;
    out.reserve(256 + spans.size() * 256);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

    // One process_name metadata event per distinct recording process.
    std::vector<std::pair<std::int32_t, std::string>> processes;
    for (const Span* span : ordered) {
        bool seen = false;
        for (const auto& entry : processes)
            seen = seen || entry.first == span->serverId;
        if (!seen)
            processes.emplace_back(span->serverId, span->role);
    }
    bool first = true;
    auto separator = [&out, &first]() {
        out += first ? "\n" : ",\n";
        first = false;
    };
    for (const auto& [pid, role] : processes) {
        separator();
        out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
        appendInt(out, pid);
        out += ",\"tid\":0,\"args\":{\"name\":\"";
        appendEscaped(out, role.c_str());
        out += " ";
        appendInt(out, pid);
        out += "\"}}";
    }

    // Greedy lane packing per process: a span takes the first lane that
    // freed up before it started, so overlapping intervals (a hedge
    // race) render on separate rows.
    struct Lanes
    {
        std::int32_t pid;
        std::vector<double> endMs;
    };
    std::vector<Lanes> lanes;
    for (const Span* span : ordered) {
        Lanes* mine = nullptr;
        for (Lanes& candidate : lanes)
            if (candidate.pid == span->serverId)
                mine = &candidate;
        if (mine == nullptr) {
            lanes.push_back(Lanes{span->serverId, {}});
            mine = &lanes.back();
        }
        std::size_t lane = mine->endMs.size();
        for (std::size_t i = 0; i < mine->endMs.size(); ++i) {
            if (mine->endMs[i] <= span->startMs) {
                lane = i;
                break;
            }
        }
        if (lane == mine->endMs.size())
            mine->endMs.push_back(0.0);
        mine->endMs[lane] = span->startMs + span->durMs;

        separator();
        out += "{\"name\":\"";
        appendEscaped(out, span->name);
        out += "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":";
        appendF3(out, span->startMs * 1000.0);
        out += ",\"dur\":";
        appendF3(out, span->durMs * 1000.0);
        out += ",\"pid\":";
        appendInt(out, span->serverId);
        out += ",\"tid\":";
        appendUint(out, lane + 1);
        out += ",\"args\":{\"trace_id\":";
        appendHexId(out, span->traceId);
        out += ",\"span_id\":";
        appendHexId(out, span->spanId);
        out += ",\"parent_span_id\":";
        appendHexId(out, span->parentSpanId);
        out += ",\"kind\":\"";
        out += spanKindName(span->kind);
        out += "\",\"cls\":";
        appendUint(out, span->cls);
        out += ",\"role\":\"";
        appendEscaped(out, span->role);
        out += "\",\"target_ms\":";
        appendF3(out, span->targetMs);
        out += ",\"over_target\":";
        out += span->overTarget() ? "true" : "false";
        out += ",\"hedge\":";
        out += span->hedge ? "true" : "false";
        out += ",\"won_race\":";
        out += span->wonRace ? "true" : "false";
        out += "}}";
    }
    out += "\n]}\n";
    return out;
}

namespace {

/** Extracts the double after `"key":` in [begin, end); NaN when absent. */
bool
findNumber(const std::string& text, std::size_t begin, std::size_t end,
           const char* key, double* out)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = text.find(needle, begin);
    if (at == std::string::npos || at >= end)
        return false;
    *out = std::strtod(text.c_str() + at + needle.size(), nullptr);
    return true;
}

/** Extracts the hex id after `"key":"` in [begin, end). */
bool
findHexId(const std::string& text, std::size_t begin, std::size_t end,
          const char* key, std::uint64_t* out)
{
    const std::string needle = std::string("\"") + key + "\":\"";
    const std::size_t at = text.find(needle, begin);
    if (at == std::string::npos || at >= end)
        return false;
    *out = std::strtoull(text.c_str() + at + needle.size(), nullptr, 16);
    return true;
}

/** Extracts and unescapes the string after `"key":"` in [begin, end). */
bool
findString(const std::string& text, std::size_t begin, std::size_t end,
           const char* key, std::string* out)
{
    const std::string needle = std::string("\"") + key + "\":\"";
    std::size_t at = text.find(needle, begin);
    if (at == std::string::npos || at >= end)
        return false;
    at += needle.size();
    out->clear();
    while (at < text.size()) {
        const char c = text[at];
        if (c == '\\' && at + 1 < text.size()) {
            out->push_back(text[at + 1]);
            at += 2;
            continue;
        }
        if (c == '"')
            return true;
        out->push_back(c);
        ++at;
    }
    return false; // Unterminated string.
}

bool
findBool(const std::string& text, std::size_t begin, std::size_t end,
         const char* key)
{
    const std::string needle = std::string("\"") + key + "\":true";
    const std::size_t at = text.find(needle, begin);
    return at != std::string::npos && at < end;
}

} // namespace

bool
parseTracezSpans(const std::string& json, std::vector<Span>* out,
                 std::string* error)
{
    auto fail = [error](const char* why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    if (json.find("\"traceEvents\"") == std::string::npos)
        return fail("not a tracez document (no traceEvents)");

    // The renderer emits one event per line; walk lines and pick the
    // "X" slices (metadata and framing lines are skipped).
    std::size_t lineStart = 0;
    while (lineStart < json.size()) {
        std::size_t lineEnd = json.find('\n', lineStart);
        if (lineEnd == std::string::npos)
            lineEnd = json.size();
        const std::size_t begin = lineStart;
        lineStart = lineEnd + 1;
        const std::size_t slice = json.find("\"ph\":\"X\"", begin);
        if (slice == std::string::npos || slice >= lineEnd)
            continue;

        Span span;
        std::string name;
        std::string role;
        std::string kind;
        double ts = 0.0;
        double dur = 0.0;
        double pid = 0.0;
        double cls = 0.0;
        if (!findString(json, begin, lineEnd, "name", &name))
            return fail("span event without a name");
        if (!findNumber(json, begin, lineEnd, "ts", &ts) ||
            !findNumber(json, begin, lineEnd, "dur", &dur))
            return fail("span event without ts/dur");
        if (!findNumber(json, begin, lineEnd, "pid", &pid))
            return fail("span event without pid");
        if (!findHexId(json, begin, lineEnd, "trace_id", &span.traceId) ||
            !findHexId(json, begin, lineEnd, "span_id", &span.spanId) ||
            !findHexId(json, begin, lineEnd, "parent_span_id",
                       &span.parentSpanId))
            return fail("span event without trace identity");
        if (!findString(json, begin, lineEnd, "kind", &kind) ||
            !spanKindFromName(kind.c_str(), &span.kind))
            return fail("span event with unknown kind");
        findNumber(json, begin, lineEnd, "cls", &cls);
        findString(json, begin, lineEnd, "role", &role);
        findNumber(json, begin, lineEnd, "target_ms", &span.targetMs);
        span.hedge = findBool(json, begin, lineEnd, "hedge");
        span.wonRace = findBool(json, begin, lineEnd, "won_race");
        span.setName(name.c_str());
        span.setRole(role.c_str());
        span.startMs = ts / 1000.0;
        span.durMs = dur / 1000.0;
        span.serverId = static_cast<std::int32_t>(pid);
        span.cls = static_cast<std::uint32_t>(cls);
        out->push_back(span);
    }
    return true;
}

} // namespace tpc::obs
