/**
 * @file
 * The span model for cross-process distributed tracing.
 *
 * A span is one named, timed interval of work attributed to a trace: the
 * client's end-to-end wait, the aggregator's fan-out window, one shard
 * leg (primary or hedged backup), or a server-side phase (queue wait,
 * execution, dynamic correction). Spans are plain fixed-size structs so
 * recording is a struct copy under a sharded lock — no allocation on the
 * hot path (the same discipline as TraceEvent).
 *
 * Identity: the 64-bit traceId names the request across every process it
 * touches (it rides in the frame header, src/net/frame.h), spanId names
 * one interval, and parentSpanId links the tree — a shard's server span
 * is parented by the aggregator leg span that sent the sub-request, and
 * a hedged backup leg shares its parent with the primary leg, so the two
 * legs render as siblings racing on one timeline.
 *
 * Times are wall-clock milliseconds since the Unix epoch (spanNowMs());
 * processes on one machine share that clock, which is what lets the
 * assembler stitch aggregator and shard spans onto a single timeline
 * without negotiating a time base.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>

namespace tpc::obs {

/** Capacity of Span::name including the NUL. */
inline constexpr std::size_t kSpanNameCapacity = 32;

/** Capacity of Span::role including the NUL. */
inline constexpr std::size_t kSpanRoleCapacity = 16;

/** What kind of interval a span covers. */
enum class SpanKind : std::uint8_t {
    /** Client-side end-to-end wait (loadgen). */
    kClient = 0,
    /** Server-side request root (submit to completion). */
    kServer = 1,
    /** Time queued before dispatch. */
    kQueue = 2,
    /** Dispatch to completion (the parallel phase). */
    kExecute = 3,
    /** First TPC correction to completion (degree was raised mid-run). */
    kCorrection = 4,
    /** Aggregator fan-out root (arrival to client response). */
    kFanout = 5,
    /** One primary sub-request leg to a shard. */
    kShardLeg = 6,
    /** A hedged backup leg; sibling of the primary kShardLeg. */
    kHedgeLeg = 7,
};

/** Stable lower-case name for a span kind ("client", "queue", ...). */
const char* spanKindName(SpanKind kind);

/** Parses a spanKindName() string; returns false when unknown. */
bool spanKindFromName(const char* name, SpanKind* out);

/** One completed interval of work attributed to a trace. */
struct Span
{
    /** Trace the span belongs to; never 0 for a recorded span. */
    std::uint64_t traceId = 0;
    /** This span's id; unique within the trace. */
    std::uint64_t spanId = 0;
    /** Parent span id; 0 for a trace root. */
    std::uint64_t parentSpanId = 0;
    SpanKind kind = SpanKind::kServer;
    /** Application request class. */
    std::uint32_t cls = 0;
    /** Recording process's id (stamped by the collector). */
    std::int32_t serverId = 0;
    /** Wall start, ms since Unix epoch (see spanNowMs()). */
    double startMs = 0.0;
    double durMs = 0.0;
    /** Latency target applied to this interval; 0 when none. */
    double targetMs = 0.0;
    /** The leg was a hedged backup. */
    bool hedge = false;
    /** The leg's reply was the one merged (hedge race winner). */
    bool wonRace = false;
    /** NUL-terminated display name (truncated to fit). */
    char name[kSpanNameCapacity] = {};
    /** Recording process's role, e.g. "loadgen" / "aggregator" / "shard"
     *  (stamped by the collector). */
    char role[kSpanRoleCapacity] = {};

    void setName(const char* value)
    {
        std::strncpy(name, value, kSpanNameCapacity - 1);
        name[kSpanNameCapacity - 1] = '\0';
    }

    void setRole(const char* value)
    {
        std::strncpy(role, value, kSpanRoleCapacity - 1);
        role[kSpanRoleCapacity - 1] = '\0';
    }

    /** True when the interval exceeded its own target. */
    bool overTarget() const { return targetMs > 0.0 && durMs > targetMs; }
};

/** Wall clock in ms since the Unix epoch — the span time base. */
inline double
spanNowMs()
{
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    return std::chrono::duration<double, std::milli>(now).count();
}

/**
 * Deterministically derives a nonzero traceId from a seed and sequence
 * number (splitmix64). Loadgen uses this so a run's trace ids are
 * reproducible from its --seed, making CSV rows joinable across runs.
 */
inline std::uint64_t
deriveTraceId(std::uint64_t seed, std::uint64_t seq)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (seq + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return z == 0 ? 1 : z;
}

} // namespace tpc::obs
