/**
 * @file
 * Cross-tier tail attribution for the partition-aggregate (fanout) tier.
 *
 * The aggregator's response time is the maximum over its shard calls, so
 * explaining an aggregator tail means explaining which shard leg caused
 * it: a shard that never answered by its deadline, a shard that shed the
 * sub-request, or a straggler that a hedged backup request rescued too
 * late. FanoutStatsCollector accumulates per-shard response-time
 * histograms (the same stats::LogHistogram the hedge trigger quantile is
 * computed from), hedge counters (issued / won / wasted), and a
 * per-completion straggler cause from classifyStraggler() — which, like
 * obs::classifyTail for the single-node tier, partitions every over-target
 * completion into exactly one cause so the per-cause counts always sum to
 * the over-target count.
 *
 * Recording happens on the aggregator's event-loop thread; snapshot()
 * may be called from any thread (post-run reporting, tests), so a single
 * mutex guards the state — there is no multi-writer contention to shard
 * away, unlike StageStatsCollector.
 */
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "stats/histogram.h"

namespace tpc::obs {

/** Why an aggregated response finished over the target completion time
 *  E. Mirrors TailCause for the single-node tier. */
enum class StragglerCause : std::uint8_t {
    /** Finished within target (or no target applied) — not a tail case. */
    kNone = 0,
    /** At least one shard produced no usable reply by the fanout
     *  deadline; the client got a partial (or empty) result. */
    kShardSlow = 1,
    /** Every shard answered in time, but at least one answered BUSY —
     *  the shard tier shed part of the query. */
    kShardShed = 2,
    /** Every shard reply arrived, at least one via a hedged backup that
     *  won — the hedge saved the request but not soon enough to meet E. */
    kHedgeWon = 3,
    /** All shards answered normally; the slowest shard's ordinary
     *  service-time tail simply pushed the response past E. */
    kShardTail = 4,
    /** At least one shard leg was down (circuit breaker open or the
     *  connection dead) when the query fanned out — the client got a
     *  degraded partial merge from the surviving shards. */
    kShardDown = 5,
};

inline constexpr std::size_t kStragglerCauseCount = 6;

/** Stable lower-case name used in /statsz labels and tables. */
const char* stragglerCauseName(StragglerCause cause);

/** The per-completion facts the straggler classifier consumes. */
struct FanoutRecord
{
    std::uint64_t requestId = 0;
    /** Request class index (collector clamps to its class list). */
    std::uint32_t cls = 0;
    /** Client-observed aggregation time: receive -> reply (ms). */
    double responseMs = 0.0;
    /** Target completion time E applied at fan-out (ms); <= 0 when the
     *  aggregator has no target table. */
    double targetMs = 0.0;
    /** Slowest usable shard reply, measured from fan-out (ms). */
    double slowestShardMs = 0.0;
    /** A shard leg produced no usable reply by the deadline. */
    bool anyDeadlineMiss = false;
    /** A shard leg resolved as BUSY (shed by the shard tier). */
    bool anyShed = false;
    /** A hedged backup request won at least one shard leg. */
    bool anyHedgeWin = false;
    /** A shard leg was skipped or settled because its endpoint was down
     *  (breaker open / connection dead) — the result is degraded. */
    bool anyShardDown = false;
    /** Shards whose usable reply made it into the merged response. */
    std::uint16_t shardsAnswered = 0;
    /** Shards the query logically covers; 0 when coverage is untracked. */
    std::uint16_t shardsTotal = 0;
};

/**
 * Attributes one aggregated completion to a cause. Pure and
 * deterministic; for any record with targetMs > 0 and
 * responseMs > targetMs it returns exactly one completion cause, so
 * summing per-cause counts reproduces the over-target count. Priority:
 * shard down (degraded merge), missing shard reply, shard shed, late
 * hedge win, ordinary shard tail.
 */
StragglerCause classifyStraggler(const FanoutRecord& record);

/** Aggregated view of one shard (one partition leg of the fan-out). */
struct FanoutShardSnapshot
{
    std::string name;
    /** Usable (OK) replies received, primaries and backups. */
    std::uint64_t replies = 0;
    std::uint64_t hedgeIssued = 0;
    /** Hedges whose backup reply won the shard leg. */
    std::uint64_t hedgeWon = 0;
    /** Hedges whose primary replied first (backup work discarded). */
    std::uint64_t hedgeWasted = 0;
    /** BUSY replies from this shard. */
    std::uint64_t shed = 0;
    /** Legs with no usable reply when the fanout deadline expired. */
    std::uint64_t deadlineMisses = 0;
    /** Replies that arrived after the leg was already settled (the
     *  hedge loser) or after the client was answered. */
    std::uint64_t lateResponses = 0;
    /** Shed legs re-sent after backoff (budget-funded re-attempts). */
    std::uint64_t retriesIssued = 0;
    /** Leg retries the token-bucket retry budget refused to fund. */
    std::uint64_t retriesSuppressed = 0;
    /** Retried legs that went on to produce a usable reply. */
    std::uint64_t retrySuccesses = 0;
    /** Reply latency from sub-request send (the hedge trigger's input). */
    stats::LogHistogram latencyMs;
};

/** Aggregated view of one request class at the aggregator. */
struct FanoutClassSnapshot
{
    std::string name;
    std::uint64_t completions = 0;
    /** Completions with responseMs > targetMs (targeted requests only). */
    std::uint64_t tail = 0;
    /** Per-cause counts; the completion causes sum to `tail`. */
    std::array<std::uint64_t, kStragglerCauseCount> causes{};
    /** Client requests rejected by aggregator admission (never fanned
     *  out; not completions, kept out of the cause sum). */
    std::uint64_t clientShed = 0;
    /** Client requests rejected (or retired unanswerable) because the
     *  end-to-end deadline budget was exhausted; like clientShed these
     *  never complete, so they stay out of the cause sum. */
    std::uint64_t deadlineExceeded = 0;
    /** Completions answered with partial coverage (a subset of the
     *  tracked completions, so not part of the cause sum either). */
    std::uint64_t degraded = 0;
    stats::LogHistogram responseMs;
    /** Coverage percentage (answered/total * 100) of every completion
     *  with tracked coverage; a healthy tier sits at 100. */
    stats::LogHistogram coveragePct;
};

/** Live view of one upstream endpoint's circuit breaker. */
struct FanoutBreakerSnapshot
{
    /** Endpoint key, host:port. */
    std::string endpoint;
    /** 0 = closed, 1 = open, 2 = half-open. */
    int state = 0;
    /** closed -> open transitions (trips). */
    std::uint64_t opened = 0;
    /** half-open probe sub-requests issued. */
    std::uint64_t probes = 0;
    /** open/half-open -> closed transitions (recoveries). */
    std::uint64_t closed = 0;
    /** Reconnect dials attempted after a drop. */
    std::uint64_t reconnects = 0;
    /** Current reconnect backoff delay (ms). */
    double backoffMs = 0.0;
};

/** Immutable merged view of the collector at one point in time. */
struct FanoutSnapshot
{
    std::vector<FanoutClassSnapshot> classes;
    std::vector<FanoutShardSnapshot> shards;
    /** Per-endpoint breaker state, sorted by endpoint key. */
    std::vector<FanoutBreakerSnapshot> breakers;
    /** Total completions folded in across classes. */
    std::uint64_t records = 0;
    /** Replies that matched no outstanding sub-request at all (the
     *  fanout was already fully settled and reclaimed). */
    std::uint64_t unmatchedResponses = 0;
    /** Aggregator-side overhead beyond the slowest usable shard reply
     *  (merge + respond, ms) — the PCS budget-split reserve's input. */
    stats::LogHistogram mergeOverheadMs;
};

/**
 * Thread-safe accumulator for the aggregator tier. All mutators take one
 * short lock; the hedge trigger reads a shard latency quantile through
 * the same lock (a ~700-bucket walk, event-loop cheap).
 */
class FanoutStatsCollector
{
  public:
    /**
     * @param classNames Request-class labels; cls indices at or past the
     *                   end clamp to the last class. Defaults to one
     *                   class "all".
     * @param shardNames One label per shard of the fan-out.
     */
    FanoutStatsCollector(std::vector<std::string> classNames,
                         std::vector<std::string> shardNames);

    FanoutStatsCollector(const FanoutStatsCollector&) = delete;
    FanoutStatsCollector& operator=(const FanoutStatsCollector&) = delete;

    /** Folds one aggregated completion in (classifies the straggler). */
    void record(const FanoutRecord& record);

    /** Records a usable shard reply latency (feeds the hedge trigger). */
    void recordShardLatency(std::size_t shard, double latencyMs);

    void onHedgeIssued(std::size_t shard);
    void onHedgeWon(std::size_t shard);
    void onHedgeWasted(std::size_t shard);
    void onShardShed(std::size_t shard);
    void onDeadlineMiss(std::size_t shard);
    void onLateResponse(std::size_t shard);
    void onUnmatchedResponse();
    void onShardRetryIssued(std::size_t shard);
    void onShardRetrySuppressed(std::size_t shard);
    void onShardRetrySuccess(std::size_t shard);

    /** Counts an aggregator-admission rejection for the class. */
    void recordClientShed(std::uint32_t cls);

    /** Counts a budget-expired client rejection for the class. */
    void recordDeadlineExceeded(std::uint32_t cls);

    /** Records the aggregation overhead past the slowest usable shard
     *  reply (merge + respond, ms) of one completed fan-out. */
    void recordMergeOverhead(double ms);

    /**
     * Approximate q-quantile of the observed merge/respond overhead, or
     * a negative value below @p minSamples observations (callers fall
     * back to a configured reserve). This is the per-stage reserve the
     * PCS-style budget split subtracts before forwarding to a leg.
     */
    double mergeOverheadQuantile(double q, std::uint64_t minSamples) const;

    /**
     * Records a breaker state change for an endpoint (0 closed, 1 open,
     * 2 half-open). Transitions into open count as trips; transitions
     * into closed from a non-closed state count as recoveries. Unknown
     * endpoints are created on first use.
     */
    void onBreakerState(const std::string& endpoint, int state);

    /** Counts a half-open probe sub-request for the endpoint. */
    void onBreakerProbe(const std::string& endpoint);

    /** Counts a reconnect dial and records the backoff now in force. */
    void onReconnectAttempt(const std::string& endpoint, double backoffMs);

    /**
     * Approximate q-quantile of the shard's observed reply latency, or
     * a negative value while the histogram holds fewer than @p minSamples
     * observations (callers fall back to a configured delay).
     */
    double shardLatencyQuantile(std::size_t shard, double q,
                                std::uint64_t minSamples) const;

    /** Merged copy of the full state (allocates; off the hot path). */
    FanoutSnapshot snapshot() const;

    std::size_t shardCount() const { return shardNames_.size(); }
    std::size_t classCount() const { return classNames_.size(); }

  private:
    std::uint32_t clampClass(std::uint32_t cls) const
    {
        const auto last =
            static_cast<std::uint32_t>(classNames_.size() - 1);
        return cls < last ? cls : last;
    }

    /** Finds (or creates) the breaker slot for an endpoint key. */
    FanoutBreakerSnapshot& breakerLocked(const std::string& endpoint);

    std::vector<std::string> classNames_;
    std::vector<std::string> shardNames_;
    mutable std::mutex mutex_;
    std::vector<FanoutClassSnapshot> classes_;
    std::vector<FanoutShardSnapshot> shards_;
    /** Sorted by endpoint key (kept small: one entry per upstream). */
    std::vector<FanoutBreakerSnapshot> breakers_;
    std::uint64_t records_ = 0;
    std::uint64_t unmatchedResponses_ = 0;
    stats::LogHistogram mergeOverheadMs_;
};

} // namespace tpc::obs
