#include "obs/chrome_trace.h"

#include <algorithm>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <map>
#include <queue>
#include <utility>

#include "util/csv.h"
#include "util/logging.h"

namespace tpc::obs {
namespace {

/** Reassembled lifecycle of one request on one server. */
struct RequestTrack
{
    double arriveMs = -1.0;
    double dispatchMs = -1.0;
    double completeMs = -1.0;
    const TraceEvent* dispatch = nullptr;
    const TraceEvent* complete = nullptr;
    std::vector<const TraceEvent*> marks; // RECHECK + CORRECT, in order
    int lane = 1;
};

void
appendEscaped(std::string& out, const char* s)
{
    for (; *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) >= 0x20) {
            out.push_back(c);
        }
    }
}

void
appendf(std::string& out, const char* fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

// snprintf dominates export time at ~30 formatted fields per request;
// the per-event loops below use these to_chars-based appenders instead
// (appendf stays for the once-per-server metadata lines).

void
appendInt(std::string& out, long long v)
{
    char buf[24];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, r.ptr);
}

void
appendUint(std::string& out, unsigned long long v)
{
    char buf[24];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, r.ptr);
}

/** %.6g equivalent (metric values). */
void
appendG6(std::string& out, double v)
{
    char buf[40];
    const auto r =
        std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 6);
    out.append(buf, r.ptr);
}

/** %.3f equivalent (microsecond timestamps). */
void
appendF3(std::string& out, double v)
{
    char buf[48];
    const auto r =
        std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed, 3);
    out.append(buf, r.ptr);
}

/** Microsecond timestamp of an event time in ms. */
double
us(double timeMs)
{
    return timeMs * 1000.0;
}

/**
 * Packs completed requests onto lanes so overlapping [dispatch, complete)
 * intervals never share one: greedy interval partitioning over dispatch
 * order (lanes start at 1; lane 0 is the arrivals track).
 */
void
assignLanes(std::vector<RequestTrack*>& tracks)
{
    std::sort(tracks.begin(), tracks.end(),
              [](const RequestTrack* a, const RequestTrack* b) {
                  return a->dispatchMs < b->dispatchMs;
              });
    // (freeAtMs, lane), smallest free-time first.
    std::priority_queue<std::pair<double, int>,
                        std::vector<std::pair<double, int>>,
                        std::greater<>>
        lanes;
    int nextLane = 1;
    for (RequestTrack* track : tracks) {
        if (!lanes.empty() && lanes.top().first <= track->dispatchMs) {
            track->lane = lanes.top().second;
            lanes.pop();
        } else {
            track->lane = nextLane++;
        }
        lanes.emplace(track->completeMs, track->lane);
    }
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceEvent>& events)
{
    // Reassemble per-request tracks, keyed by (server, request) — cluster
    // traces reuse request ids across ISNs. Net-boundary events carry the
    // client-assigned id, so they stay on their own instant-event lane
    // instead of joining a request track.
    std::map<std::pair<std::int32_t, std::uint64_t>, RequestTrack> tracks;
    std::map<std::int32_t, std::vector<const TraceEvent*>> netEvents;
    for (const TraceEvent& ev : events) {
        switch (ev.type) {
        case TraceEventType::kArrive:
            tracks[{ev.serverId, ev.requestId}].arriveMs = ev.timeMs;
            break;
        case TraceEventType::kDispatch: {
            RequestTrack& track = tracks[{ev.serverId, ev.requestId}];
            track.dispatchMs = ev.timeMs;
            track.dispatch = &ev;
            break;
        }
        case TraceEventType::kRecheck:
        case TraceEventType::kCorrect:
            tracks[{ev.serverId, ev.requestId}].marks.push_back(&ev);
            break;
        case TraceEventType::kComplete: {
            RequestTrack& track = tracks[{ev.serverId, ev.requestId}];
            track.completeMs = ev.timeMs;
            track.complete = &ev;
            break;
        }
        case TraceEventType::kNetAccept:
        case TraceEventType::kNetReceive:
        case TraceEventType::kNetRespond:
        case TraceEventType::kNetShed:
            netEvents[ev.serverId].push_back(&ev);
            break;
        }
    }

    // Lane assignment runs per server process.
    std::map<std::int32_t, std::vector<RequestTrack*>> perServer;
    for (auto& [key, track] : tracks) {
        if (track.dispatch != nullptr && track.complete != nullptr)
            perServer[key.first].push_back(&track);
    }
    std::map<std::int32_t, int> laneCount;
    for (auto& [serverId, serverTracks] : perServer) {
        assignLanes(serverTracks);
        int maxLane = 0;
        for (const RequestTrack* track : serverTracks)
            maxLane = std::max(maxLane, track->lane);
        laneCount[serverId] = maxLane;
    }

    std::string out;
    out.reserve(256 + tracks.size() * 400);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    auto comma = [&] {
        if (!first)
            out += ",\n";
        first = false;
    };

    // Process / thread naming metadata.
    for (const auto& [serverId, count] : laneCount) {
        comma();
        appendf(out,
                "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":"
                "\"process_name\",\"args\":{\"name\":\"server %d\"}}",
                serverId, serverId);
        comma();
        appendf(out,
                "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":"
                "\"thread_name\",\"args\":{\"name\":\"queue (arrivals)\"}}",
                serverId);
        for (int lane = 1; lane <= count; ++lane) {
            comma();
            appendf(out,
                    "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                    "\"thread_name\",\"args\":{\"name\":\"requests %d\"}}",
                    serverId, lane, lane);
        }
    }

    // The RPC boundary gets one dedicated lane per server, far above the
    // request lanes so it always sorts last.
    constexpr int kNetLane = 9999;
    for (const auto& [serverId, evs] : netEvents) {
        (void)evs;
        comma();
        appendf(out,
                "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                "\"thread_name\",\"args\":{\"name\":\"net (rpc)\"}}",
                serverId, kNetLane);
        // A server that only has net events still needs a process name.
        if (laneCount.find(serverId) == laneCount.end()) {
            comma();
            appendf(out,
                    "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":"
                    "\"process_name\",\"args\":{\"name\":\"server %d\"}}",
                    serverId, serverId);
        }
    }
    for (const auto& [serverId, evs] : netEvents) {
        for (const TraceEvent* ev : evs) {
            comma();
            out += "{\"ph\":\"i\",\"s\":\"t\",\"pid\":";
            appendInt(out, serverId);
            out += ",\"tid\":";
            appendInt(out, kNetLane);
            out += ",\"ts\":";
            appendF3(out, us(ev->timeMs));
            out += ",\"name\":\"";
            out += traceEventTypeName(ev->type);
            out += ' ';
            appendUint(out, static_cast<unsigned long long>(ev->requestId));
            out += "\",\"cat\":\"net\",\"args\":{\"client_request_id\":";
            appendUint(out, static_cast<unsigned long long>(ev->requestId));
            out += "}}";
        }
    }

    for (const auto& [key, track] : tracks) {
        const std::int32_t serverId = key.first;
        const unsigned long long id =
            static_cast<unsigned long long>(key.second);

        if (track.arriveMs >= 0.0) {
            comma();
            out += "{\"ph\":\"i\",\"s\":\"t\",\"pid\":";
            appendInt(out, serverId);
            out += ",\"tid\":0,\"ts\":";
            appendF3(out, us(track.arriveMs));
            out += ",\"name\":\"ARRIVE ";
            appendUint(out, id);
            out += "\",\"cat\":\"arrive\",\"args\":{\"request_id\":";
            appendUint(out, id);
            out += "}}";
        }
        if (track.dispatch == nullptr || track.complete == nullptr)
            continue; // Cancelled or still in flight: no slice to draw.

        const TraceEvent& d = *track.dispatch;
        const TraceEvent& c = *track.complete;
        int corrections = 0;
        for (const TraceEvent* mark : track.marks) {
            if (mark->type == TraceEventType::kCorrect)
                ++corrections;
        }
        comma();
        out += "{\"ph\":\"X\",\"pid\":";
        appendInt(out, serverId);
        out += ",\"tid\":";
        appendInt(out, track.lane);
        out += ",\"ts\":";
        appendF3(out, us(track.dispatchMs));
        out += ",\"dur\":";
        appendF3(out, us(track.completeMs - track.dispatchMs));
        out += ",\"cat\":\"request\",\"name\":\"";
        if (d.profileClass[0] != '\0')
            appendEscaped(out, d.profileClass);
        else
            out += "request";
        out += ' ';
        appendUint(out, id);
        out += "\",\"args\":{\"request_id\":";
        appendUint(out, id);
        out += ",\"predicted_ms\":";
        appendG6(out, d.predictedMs);
        out += ",\"target_ms\":";
        appendG6(out, d.targetMs);
        out += ",\"load_value\":";
        appendG6(out, d.loadValue);
        out += ",\"degree\":";
        appendInt(out, d.degree);
        out += ",\"requested_degree\":";
        appendInt(out, d.requestedDegree);
        out += ",\"speedup\":";
        appendG6(out, d.speedup);
        out += ",\"estimated_ms\":";
        appendG6(out, d.estimatedMs);
        out += ",\"profile_class\":\"";
        appendEscaped(out, d.profileClass);
        out += "\"";
        out += ",\"idle_workers_at_dispatch\":";
        appendInt(out, d.idleWorkers);
        if (track.arriveMs >= 0.0) {
            out += ",\"queue_ms\":";
            appendG6(out, track.dispatchMs - track.arriveMs);
        }
        out += ",\"response_ms\":";
        appendG6(out, track.completeMs - (track.arriveMs >= 0.0
                                              ? track.arriveMs
                                              : track.dispatchMs));
        out += ",\"max_degree\":";
        appendInt(out, c.degree);
        out += ",\"initial_degree\":";
        appendInt(out, c.oldDegree);
        out += ",\"corrections\":";
        appendInt(out, corrections);
        out += ",\"corrected\":";
        out += corrections > 0 ? "true" : "false";
        out += "}}";

        for (const TraceEvent* mark : track.marks) {
            comma();
            out += "{\"ph\":\"i\",\"s\":\"t\",\"pid\":";
            appendInt(out, serverId);
            out += ",\"tid\":";
            appendInt(out, track.lane);
            out += ",\"ts\":";
            appendF3(out, us(mark->timeMs));
            if (mark->type == TraceEventType::kCorrect) {
                out += ",\"name\":\"CORRECT ";
                appendInt(out, mark->oldDegree);
                out += "->";
                appendInt(out, mark->degree);
                out += "\",\"cat\":\"correct\",\"args\":{\"request_id\":";
                appendUint(out, id);
                out += ",\"old_degree\":";
                appendInt(out, mark->oldDegree);
                out += ",\"new_degree\":";
                appendInt(out, mark->degree);
            } else {
                out += ",\"name\":\"RECHECK\",\"cat\":\"recheck\","
                       "\"args\":{\"request_id\":";
                appendUint(out, id);
                out += ",\"degree\":";
                appendInt(out, mark->degree);
            }
            out += ",\"idle_workers\":";
            appendInt(out, mark->idleWorkers);
            out += "}}";
        }
    }
    out += "\n]}\n";
    return out;
}

void
writeChromeTrace(const std::vector<TraceEvent>& events,
                 const std::string& path)
{
    // CsvWriter owns directory creation; reuse its convention by writing
    // through ofstream after ensuring the parent exists the same way.
    const std::string json = chromeTraceJson(events);
    std::ofstream out = util::openForWrite(path);
    out << json;
    if (!out)
        util::fatal("cannot write trace file: " + path);
}

} // namespace tpc::obs
