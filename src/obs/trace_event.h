/**
 * @file
 * Typed per-request lifecycle events for TPC decision auditing.
 *
 * Every scheduling decision the paper reasons about (Sections 3.3-3.4)
 * becomes one fixed-size event: ARRIVE when the request enters the queue,
 * DISPATCH when the policy picks the initial degree (carrying the target E,
 * the predicted demand L and the speedup-table row that justified the
 * degree), RECHECK when a correction callback fires, CORRECT when the
 * degree is actually raised, and COMPLETE at the end. A run's event stream
 * answers "why did request X miss P99?" from telemetry alone.
 */
#pragma once

#include <cstdint>
#include <cstring>

namespace tpc::obs {

/** Lifecycle event kinds, in the order they can occur for one request.
 *  The kNet* kinds are emitted by the RPC layer (src/net) and carry the
 *  *client-assigned* request id, so a trace spans the network boundary:
 *  NET_RECEIVE -> ARRIVE/DISPATCH/... -> NET_RESPOND. */
enum class TraceEventType : std::uint8_t {
    kArrive = 0,
    kDispatch,
    kRecheck,
    kCorrect,
    kComplete,
    /** New client connection accepted; requestId is the connection id. */
    kNetAccept,
    /** Request frame decoded off the socket. */
    kNetReceive,
    /** Response frame queued for writing to the socket. */
    kNetRespond,
    /** Request rejected by admission control (BUSY response). */
    kNetShed,
};

/** Upper-case event name ("ARRIVE", "DISPATCH", ...). */
const char* traceEventTypeName(TraceEventType type);

/**
 * One lifecycle event. Fixed-size and allocation-free so recording is a
 * buffer append; fields beyond (type, requestId, timeMs) are meaningful
 * only for the event types noted.
 */
struct TraceEvent
{
    TraceEventType type = TraceEventType::kArrive;
    /** Distinguishes ISNs in cluster traces (exporter pid). */
    std::int32_t serverId = 0;
    std::uint64_t requestId = 0;
    /** Recorder-assigned global sequence, for stable merge ordering. */
    std::uint64_t seq = 0;
    /** Event time: simulated ms (SimServer) or wall ms since the server
     *  epoch (ThreadedServer). */
    double timeMs = 0.0;

    /** DISPATCH, COMPLETE: predicted sequential demand L (ms). */
    double predictedMs = 0.0;
    /** DISPATCH: load-dependent target completion time E (ms). */
    double targetMs = 0.0;
    /** DISPATCH: load-metric value used for the target-table lookup. */
    double loadValue = 0.0;
    /** DISPATCH: speedup the table promised at the requested degree. */
    double speedup = 0.0;
    /** DISPATCH: estimated wall time predictedMs / speedup (ms). */
    double estimatedMs = 0.0;

    /** DISPATCH: granted degree; CORRECT: new degree; COMPLETE: max
     *  degree the request ever ran at; RECHECK: current degree. */
    std::int32_t degree = 0;
    /** CORRECT: degree before the raise; COMPLETE: initial degree. */
    std::int32_t oldDegree = 0;
    /** DISPATCH: policy's requested degree before the idle-worker cap. */
    std::int32_t requestedDegree = 0;
    /** DISPATCH/RECHECK/CORRECT: idle workers at that instant (before the
     *  decision consumed any). */
    std::int32_t idleWorkers = 0;

    /** DISPATCH: name of the speedup-table row (request class). */
    char profileClass[16] = {};

    /** Copies (and truncates) the class name into profileClass. */
    void setProfileClass(const char* name)
    {
        if (name == nullptr) {
            profileClass[0] = '\0';
            return;
        }
        std::strncpy(profileClass, name, sizeof(profileClass) - 1);
        profileClass[sizeof(profileClass) - 1] = '\0';
    }
};

} // namespace tpc::obs
