/**
 * @file
 * Client-side retry discipline: token-bucket retry budgets and capped
 * exponential backoff with deterministic jitter.
 *
 * A retrying fleet is a load amplifier: when a server saturates, naive
 * clients multiply offered load by their retry factor exactly when the
 * system can least absorb it, producing the classic metastable retry
 * storm (goodput collapses and stays collapsed even after the original
 * overload passes). Two mechanisms break the loop:
 *
 *  - RetryBudget: a token bucket where *successes* earn fractional
 *    tokens and each retry spends a whole one. With earn ratio r the
 *    steady-state retry rate is capped at ~r x the success rate (the
 *    default 0.1 is the "retries <= ~10% of successes" rule), so when
 *    successes stop, retries stop — the amplifier unplugs itself.
 *
 *  - Backoff: capped exponential delay with multiplicative jitter so a
 *    synchronized fleet de-correlates, plus a floor from the server's
 *    retryAfterMs push hint (an overloaded server knows better than any
 *    client-side guess how long it needs).
 *
 * Both are plain single-threaded state machines: callers (the loadgen
 * arrival loop, the aggregator event loop) own one instance per
 * connection pool and drive it from one thread.
 */
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.h"

namespace tpc::overload {

/** Token-bucket retry budget: successes earn, retries spend. */
struct RetryBudgetConfig
{
    /** Tokens earned per success (steady-state retry/success cap). */
    double earnPerSuccess = 0.1;
    /** Bucket capacity: the largest retry burst a quiet period can bank.
     *  Also the initial balance so cold-start failures may retry. */
    double maxTokens = 10.0;
};

class RetryBudget
{
  public:
    RetryBudget() : RetryBudget(RetryBudgetConfig{}) {}
    explicit RetryBudget(const RetryBudgetConfig& config)
        : config_(config), tokens_(config.maxTokens)
    {
    }

    /** Credits one success. */
    void onSuccess()
    {
        tokens_ = std::min(config_.maxTokens,
                           tokens_ + config_.earnPerSuccess);
        ++successes_;
    }

    /** Spends one token; false (and no spend) when the budget is dry —
     *  the caller must drop the retry, not queue it. */
    bool tryRetry()
    {
        if (tokens_ < 1.0) {
            ++suppressed_;
            return false;
        }
        tokens_ -= 1.0;
        ++issued_;
        return true;
    }

    double tokens() const { return tokens_; }
    std::uint64_t successes() const { return successes_; }
    std::uint64_t issued() const { return issued_; }
    std::uint64_t suppressed() const { return suppressed_; }

  private:
    RetryBudgetConfig config_;
    double tokens_;
    std::uint64_t successes_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t suppressed_ = 0;
};

/** Capped exponential backoff with multiplicative jitter. */
struct BackoffConfig
{
    double baseDelayMs = 2.0;
    double maxDelayMs = 256.0;
    double multiplier = 2.0;
    /** Jitter spread: the delay is scaled by a uniform draw from
     *  [1 - jitter, 1 + jitter]. 0 disables jitter (deterministic). */
    double jitter = 0.5;
};

class Backoff
{
  public:
    Backoff() : Backoff(BackoffConfig{}) {}
    explicit Backoff(const BackoffConfig& config) : config_(config) {}

    /**
     * Delay before retry attempt @p attempt (1 = first retry), jittered
     * via @p rng and floored at @p serverHintMs (the retryAfterMs the
     * server pushed on its BUSY response; 0 = no hint). The hint floors
     * the *unjittered* delay so a server-requested throttle cannot be
     * jittered below what the server asked for.
     */
    double delayMs(int attempt, util::Rng& rng,
                   double serverHintMs = 0.0) const
    {
        double delay = config_.baseDelayMs;
        for (int i = 1; i < attempt; ++i) {
            delay *= config_.multiplier;
            if (delay >= config_.maxDelayMs)
                break;
        }
        delay = std::min(delay, config_.maxDelayMs);
        if (config_.jitter > 0.0)
            delay *= rng.uniform(1.0 - config_.jitter, 1.0 + config_.jitter);
        return std::max(delay, serverHintMs);
    }

    const BackoffConfig& config() const { return config_; }

  private:
    BackoffConfig config_;
};

} // namespace tpc::overload
