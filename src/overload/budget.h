/**
 * @file
 * End-to-end deadline-budget arithmetic shared by every hop.
 *
 * The frame header carries the *remaining* budget in microseconds (a
 * relative allowance, not an absolute wall deadline, so unsynchronized
 * clocks cannot corrupt it). The propagation contract:
 *
 *   client:      budgetUs = full end-to-end allowance at first send
 *   every hop:   forwardUs = remainingBudgetUs(received, elapsed here)
 *   expiry:      a hop whose remaining budget reaches zero rejects with
 *                kDeadlineExceeded — the request never occupies a worker
 *
 * The aggregator splits the remaining budget across fan-out legs
 * PCS-style: a leg's share is what remains after reserving the
 * aggregator's own measured merge/response overhead (a per-stage
 * quantile from live stats), not a static per-hop constant. When the
 * measured reserve would consume the whole budget the leg share clamps
 * to a small floor — a nearly-expired request is better served by a
 * fast try than by a guaranteed rejection.
 */
#pragma once

#include <algorithm>
#include <cstdint>

namespace tpc::overload {

/** budgetUs == 0 on the wire means "no budget attached". */
inline constexpr std::uint64_t kNoBudgetUs = 0;

/** Smallest budget a hop forwards instead of rejecting, µs. */
inline constexpr std::uint64_t kMinForwardBudgetUs = 100;

inline std::uint64_t
msToUs(double ms)
{
    return ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1000.0);
}

inline double
usToMs(std::uint64_t us)
{
    return static_cast<double>(us) / 1000.0;
}

/**
 * Budget left after @p elapsedMs was spent at this hop; 0 when the
 * budget is exhausted (callers must then reject, not forward).
 * @p budgetUs == kNoBudgetUs stays "no budget".
 */
inline std::uint64_t
remainingBudgetUs(std::uint64_t budgetUs, double elapsedMs)
{
    if (budgetUs == kNoBudgetUs)
        return kNoBudgetUs;
    const std::uint64_t elapsedUs = msToUs(std::max(0.0, elapsedMs));
    return budgetUs > elapsedUs ? budgetUs - elapsedUs : 0;
}

/** True when a received budget is already unservable on arrival. */
inline bool
budgetExpired(std::uint64_t budgetUs)
{
    return budgetUs != kNoBudgetUs && budgetUs < kMinForwardBudgetUs;
}

/**
 * PCS-style fan-out split: the budget forwarded on a shard leg is the
 * aggregator's remaining budget minus its own measured downstream
 * overhead (merge + respond, a live per-stage quantile in ms). Returns
 * kNoBudgetUs when no budget is attached; otherwise at least
 * kMinForwardBudgetUs so a nearly-expired request still gets one fast
 * attempt rather than a guaranteed local rejection.
 */
inline std::uint64_t
splitLegBudgetUs(std::uint64_t remainingUs, double mergeReserveMs)
{
    if (remainingUs == kNoBudgetUs)
        return kNoBudgetUs;
    const std::uint64_t reserveUs = msToUs(std::max(0.0, mergeReserveMs));
    const std::uint64_t leg =
        remainingUs > reserveUs ? remainingUs - reserveUs : 0;
    return std::max(leg, kMinForwardBudgetUs);
}

} // namespace tpc::overload
