#include "overload/admission.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace tpc::overload {

bool
parseTenantQuotas(const std::string& spec, std::vector<TenantQuota>* out)
{
    std::vector<TenantQuota> parsed;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            return false;
        const std::size_t firstColon = entry.find(':');
        if (firstColon == std::string::npos || firstColon == 0)
            return false;
        char* end = nullptr;
        const long id = std::strtol(entry.c_str(), &end, 10);
        if (end != entry.c_str() + firstColon || id < 0 || id > 0xFFFF)
            return false;
        TenantQuota quota;
        quota.tenant = static_cast<std::uint16_t>(id);
        const std::size_t secondColon = entry.find(':', firstColon + 1);
        if (secondColon == std::string::npos) {
            quota.name = entry.substr(firstColon + 1);
        } else {
            quota.name = entry.substr(firstColon + 1,
                                      secondColon - firstColon - 1);
            const std::string weightText = entry.substr(secondColon + 1);
            quota.weight = std::strtod(weightText.c_str(), &end);
            if (weightText.empty() ||
                end != weightText.c_str() + weightText.size() ||
                quota.weight <= 0.0)
                return false;
        }
        if (quota.name.empty())
            return false;
        parsed.push_back(std::move(quota));
    }
    if (parsed.empty())
        return false;
    *out = std::move(parsed);
    return true;
}

WeightedAdmissionController::WeightedAdmissionController(
    AdmissionLimits limits)
    : limits_(std::move(limits)), weighted_(!limits_.tenants.empty())
{
    if (!weighted_) {
        // Single implicit tenant owning the whole capacity: exactly the
        // pre-tenant behavior for every existing caller.
        Slot slot;
        slot.quota = TenantQuota{0, "all", 1.0};
        slot.guarantee = std::max(0, limits_.maxInFlight);
        slots_.push_back(std::move(slot));
        return;
    }
    double totalWeight = 0.0;
    for (const TenantQuota& quota : limits_.tenants)
        totalWeight += std::max(0.0, quota.weight);
    for (const TenantQuota& quota : limits_.tenants) {
        Slot slot;
        slot.quota = quota;
        if (limits_.maxInFlight > 0 && totalWeight > 0.0) {
            const double share = std::max(0.0, quota.weight) / totalWeight;
            slot.guarantee = std::max(
                1, static_cast<int>(
                       std::floor(limits_.maxInFlight * share)));
        }
        slots_.push_back(std::move(slot));
    }
    // Implicit catch-all for tenant ids nobody configured: no reserved
    // share, surplus only.
    Slot other;
    other.quota = TenantQuota{0xFFFF, "other", 0.0};
    slots_.push_back(std::move(other));
}

std::size_t
WeightedAdmissionController::slotFor(std::uint16_t tenant) const
{
    if (!weighted_)
        return 0;
    for (std::size_t i = 0; i < limits_.tenants.size(); ++i)
        if (slots_[i].quota.tenant == tenant)
            return i;
    return slots_.size() - 1; // the catch-all
}

bool
WeightedAdmissionController::tryAdmit(std::uint16_t tenant, int queueDepth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_[slotFor(tenant)];
    const bool queueFull =
        limits_.maxPending > 0 && queueDepth >= limits_.maxPending;
    bool admit = false;
    if (!queueFull) {
        if (limits_.maxInFlight <= 0) {
            admit = true;
        } else if (slot.inFlight < slot.guarantee &&
                   totalInFlight_ < limits_.maxInFlight) {
            // Within the tenant's reserved share. The surplus branch
            // below never eats unused guarantees, so this slot is free
            // whenever the total cap itself has room.
            admit = true;
        } else {
            // Surplus: admit only while the other tenants' *unused*
            // guarantees stay reserved for them.
            int othersReserve = 0;
            for (const Slot& s : slots_)
                if (&s != &slot)
                    othersReserve +=
                        std::max(0, s.guarantee - s.inFlight);
            admit = totalInFlight_ + othersReserve < limits_.maxInFlight;
        }
    }
    if (!admit) {
        ++slot.shed;
        ++totalShed_;
        return false;
    }
    ++slot.inFlight;
    ++totalInFlight_;
    ++slot.accepted;
    ++totalAccepted_;
    return true;
}

void
WeightedAdmissionController::onComplete(std::uint16_t tenant)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_[slotFor(tenant)];
    if (slot.inFlight > 0)
        --slot.inFlight;
    if (totalInFlight_ > 0)
        --totalInFlight_;
}

void
WeightedAdmissionController::onGoodput(std::uint16_t tenant)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++slots_[slotFor(tenant)].goodput;
}

std::uint64_t
WeightedAdmissionController::accepted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return totalAccepted_;
}

std::uint64_t
WeightedAdmissionController::shed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return totalShed_;
}

int
WeightedAdmissionController::inFlight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return totalInFlight_;
}

std::vector<TenantAdmissionSnapshot>
WeightedAdmissionController::tenantSnapshots() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TenantAdmissionSnapshot> out;
    if (!weighted_)
        return out;
    out.reserve(slots_.size());
    for (const Slot& slot : slots_) {
        // The catch-all renders only once it saw traffic.
        if (slot.quota.name == "other" && slot.accepted == 0 &&
            slot.shed == 0)
            continue;
        TenantAdmissionSnapshot snap;
        snap.tenant = slot.quota.tenant;
        snap.name = slot.quota.name;
        snap.weight = slot.quota.weight;
        snap.guarantee = slot.guarantee;
        snap.accepted = slot.accepted;
        snap.shed = slot.shed;
        snap.inFlight = slot.inFlight;
        snap.goodput = slot.goodput;
        out.push_back(std::move(snap));
    }
    return out;
}

} // namespace tpc::overload
