/**
 * @file
 * Tenant-aware weighted-fair admission control.
 *
 * The single-knob AdmissionController (bounded in-flight + bounded
 * pending queue) treats every request identically, so one tenant's
 * flash crowd eats every other tenant's admit slots — the shed decision
 * is made by arrival order, exactly the SLO-isolation gap the multi-
 * tenant roadmap item calls out. WeightedAdmissionController keeps the
 * same two global limits but partitions the in-flight capacity by
 * weight:
 *
 *   guarantee_t = floor(maxInFlight * weight_t / sum(weights))   (>= 1)
 *
 * Admission rule (work-conserving reservation):
 *   - a tenant below its guarantee is admitted (its slots are reserved
 *     for it: surplus takers may never eat another tenant's unused
 *     guarantee, see below);
 *   - a tenant at/above its guarantee may still be admitted from the
 *     surplus, but only while total in-flight stays below
 *     maxInFlight minus the other tenants' *unused* guarantees.
 *
 * So capacity never idles while anyone has demand (work-conserving),
 * yet a flooding tenant saturates only its own share plus the surplus —
 * the well-behaved tenant's guarantee stays instantly available and its
 * accepted tail stays flat.
 *
 * With no tenants configured the controller collapses to the original
 * single-bucket behavior (every request lands on one implicit tenant
 * with the whole capacity as its guarantee), which keeps the net-layer
 * API and all existing callers unchanged. Unknown tenant ids fall into
 * an implicit "other" bucket with no guarantee (surplus only).
 *
 * Thread-safe: one mutex over the accounting (admission runs once per
 * request on an event loop; accessors may race from stats threads).
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tpc::overload {

/** One tenant's share of the admission capacity. */
struct TenantQuota
{
    /** Wire tenant id (frame header offset 52). */
    std::uint16_t tenant = 0;
    /** Label for /statsz lanes and CSV columns. */
    std::string name;
    /** Relative share of maxInFlight; must be > 0. */
    double weight = 1.0;
};

/** Admission limits; non-positive values mean "unlimited". */
struct AdmissionLimits
{
    /** Cap on admitted-but-unanswered requests. */
    int maxInFlight = 128;
    /** Cap on the dispatch queue depth observed at admission time. */
    int maxPending = 64;
    /** Weighted-fair tenant shares; empty = single-tenant behavior. */
    std::vector<TenantQuota> tenants;
};

/** Per-tenant admission counters (one /statsz lane each). */
struct TenantAdmissionSnapshot
{
    std::uint16_t tenant = 0;
    std::string name;
    double weight = 0.0;
    /** Reserved in-flight slots (0 = surplus-only bucket). */
    int guarantee = 0;
    std::uint64_t accepted = 0;
    std::uint64_t shed = 0;
    int inFlight = 0;
    /** OK responses delivered (caller-reported via onGoodput). */
    std::uint64_t goodput = 0;
};

/**
 * Parses a CLI tenant-mix spec "id:name:weight[,id:name:weight...]"
 * (weight optional, default 1.0) into quotas — the shared format of the
 * servers' --tenants flag and the load generator's traffic mix. Returns
 * false (leaving @p out untouched) on any malformed entry.
 */
bool parseTenantQuotas(const std::string& spec,
                       std::vector<TenantQuota>* out);

class WeightedAdmissionController
{
  public:
    explicit WeightedAdmissionController(AdmissionLimits limits = {});

    /** Single-tenant compatibility entry point (implicit tenant 0). */
    bool tryAdmit(int queueDepth) { return tryAdmit(0, queueDepth); }

    /**
     * Decides whether to accept a request from @p tenant given the
     * current dispatch queue depth. False means shed (answer BUSY).
     */
    bool tryAdmit(std::uint16_t tenant, int queueDepth);

    /** Releases the slot taken by tryAdmit (any completion, including
     *  cancellations and deadline expiries — slots must never leak). */
    void onComplete(std::uint16_t tenant = 0);

    /** Counts one OK response for the tenant's goodput lane. */
    void onGoodput(std::uint16_t tenant = 0);

    std::uint64_t accepted() const;
    std::uint64_t shed() const;
    int inFlight() const;
    const AdmissionLimits& limits() const { return limits_; }

    /** Per-tenant lanes; empty when no tenants were configured. */
    std::vector<TenantAdmissionSnapshot> tenantSnapshots() const;

  private:
    struct Slot
    {
        TenantQuota quota;
        int guarantee = 0;
        int inFlight = 0;
        std::uint64_t accepted = 0;
        std::uint64_t shed = 0;
        std::uint64_t goodput = 0;
    };

    /** Maps a wire tenant id to its slot (kOtherSlot for unknowns). */
    std::size_t slotFor(std::uint16_t tenant) const;

    AdmissionLimits limits_;
    /** True when tenants were configured (per-tenant lanes render). */
    bool weighted_ = false;
    mutable std::mutex mutex_;
    std::vector<Slot> slots_;
    int totalInFlight_ = 0;
    std::uint64_t totalAccepted_ = 0;
    std::uint64_t totalShed_ = 0;
};

} // namespace tpc::overload
