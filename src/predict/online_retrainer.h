/**
 * @file
 * Online predictor retraining: drift-detect, retrain, shadow, promote.
 *
 * The paper trains its execution-time predictor offline and freezes it;
 * corpus and query-mix shift then erode recall at the long-request
 * threshold — exactly where TPC needs it, since an under-predicted long
 * request is dispatched at low parallelism and becomes a mispredict_long
 * tail completion. The OnlineRetrainer closes that loop from live
 * completions back into the model:
 *
 *   observe() -- every completion (feature vector + actual service time
 *   + the prediction the dispatch used) lands in a bounded replay buffer
 *   and in the current observation window's |predicted - actual| error
 *   histogram.
 *
 *   advanceWindow() -- at each window boundary (background thread, same
 *   pattern as adapt::AdaptiveTableController, or pumped manually by
 *   deterministic benches) the retrainer compares the window's error
 *   quantile against a slow EWMA baseline; sustained excursions flag
 *   drift and trigger a candidate Gbrt fit on the buffered completions
 *   (minus a held-back recent slice). The candidate is shadow-scored
 *   against the active model on the holdback — mean absolute error plus
 *   recall at the long-request threshold; serving is never touched —
 *   and promoted via VersionedPredictor::publish only after it wins by
 *   a hysteresis margin for K consecutive windows.
 *
 *   Guardrail -- for the first windows after a promotion the retrainer
 *   compares the actual windowed error quantile against the
 *   pre-promotion level and rolls back to the last-known-good model
 *   when it regressed, then cools down before retraining again.
 *
 * Units: the retrainer is unit-agnostic — features, actuals and
 * predictions just have to share a scale with the model being served
 * (search_server feeds it latent-ms units; see examples/search_server).
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ml/gbrt.h"
#include "obs/metrics.h"
#include "predict/versioned_model.h"
#include "stats/histogram.h"

namespace tpc::predict {

/** Controls for the retraining loop. */
struct RetrainOptions
{
    /** Observation-window length (ms) for the background thread. */
    double windowMs = 1000.0;
    /** Windows with fewer completions than this are not evaluated. */
    std::uint64_t minWindowSamples = 64;
    /** Replay-buffer capacity (completions kept for retraining). */
    std::size_t bufferCapacity = 8192;
    /** Buffered completions required before a retrain is attempted. */
    std::size_t minTrainSamples = 512;
    /** Most-recent fraction of the buffer held back for shadow scoring
     *  (never trained on). */
    double holdbackFraction = 0.2;
    /** Error quantile watched for drift (and by the guardrail). */
    double errorQuantile = 0.9;
    /** Window error quantile above baseline x this factor flags drift. */
    double driftFactor = 1.5;
    /** Candidate shadow MAE must beat the active model's by this
     *  fraction to "win" a window. */
    double hysteresis = 0.05;
    /** Candidate long-recall may trail the active model's by at most
     *  this much and still win. */
    double recallSlack = 0.05;
    /** Consecutive shadow wins required before promotion (K). */
    int promoteAfterWindows = 2;
    /** Post-promotion error quantile above the pre-promotion level x
     *  this factor triggers rollback. */
    double rollbackErrFactor = 1.1;
    /** Windows the guardrail watches after each promotion. */
    int guardWindows = 3;
    /** Windows to sit out after a rollback before retraining again. */
    int cooldownWindows = 5;
    /** Requests with actual time above this are "long" for the shadow
     *  recall check (same units as observe() actuals). */
    double longThresholdMs = 80.0;
    /** Fit parameters for candidates (coarser than offline training —
     *  the fit runs on the background thread every drifted window). */
    ml::GbrtParams train;
    /** Spawn the background window thread; false = manual pumping. */
    bool startThread = true;
    /** When non-empty, every promoted model is written here (atomic
     *  tmp+rename, Gbrt text format) for warm restarts. */
    std::string promotedModelPath;
};

/** Where the retrainer sits in the drift->retrain->promote machine. */
enum class RetrainState : int
{
    kMonitoring = 0, ///< Watching error quantiles / shadow-scoring.
    kHolding = 1,    ///< Recently promoted; guardrail watching errors.
    kCooldown = 2,   ///< Rolled back; waiting before the next retrain.
};

const char* retrainStateName(RetrainState state);

/** Point-in-time retrainer state for /statsz and tests. */
struct RetrainerStats
{
    std::uint64_t modelVersion = 0;
    ModelSource modelSource = ModelSource::kOffline;
    RetrainState state = RetrainState::kMonitoring;
    bool hasCandidate = false;
    std::uint64_t windowsEvaluated = 0;
    std::uint64_t driftWindows = 0;
    std::uint64_t retrains = 0;
    std::uint64_t promotions = 0;
    std::uint64_t rollbacks = 0;
    std::size_t bufferedSamples = 0;
    /** Error quantiles from the last closed window. */
    double lastWindowErrP50 = 0.0;
    double lastWindowErrQuantile = 0.0;
    /** Slow EWMA baseline the drift test compares against. */
    double baselineErrQuantile = 0.0;
    /** Shadow scores from the last evaluated window (holdback MAE and
     *  long-recall for active and candidate). */
    double activeShadowMae = 0.0;
    double candidateShadowMae = 0.0;
    double activeShadowRecall = 0.0;
    double candidateShadowRecall = 0.0;
    int consecutiveWins = 0;
    std::uint64_t lastWindowCompletions = 0;
};

/**
 * The online retrainer. Thread-safe: observe() may be called from any
 * number of completion threads; advanceWindow() runs on the background
 * thread (or the caller's, in manual mode); stats() from anywhere.
 * Publishes only through the VersionedPredictor, which dispatch paths
 * consume RCU-style — shadow evaluation never touches serving state.
 */
class OnlineRetrainer
{
  public:
    /**
     * @param live         The versioned predictor serving dispatch;
     *                     must outlive the retrainer.
     * @param featureNames Training-dataset column names; fixes the
     *                     feature count observe() expects.
     */
    OnlineRetrainer(VersionedPredictor& live,
                    std::vector<std::string> featureNames,
                    const RetrainOptions& options = {});
    ~OnlineRetrainer();

    OnlineRetrainer(const OnlineRetrainer&) = delete;
    OnlineRetrainer& operator=(const OnlineRetrainer&) = delete;

    /** Feeds one completion: the feature vector the prediction used,
     *  the measured actual, and the prediction served at dispatch. */
    void observe(const std::vector<double>& features, double actualMs,
                 double predictedMs);

    /**
     * Closes the current window and runs one step of the state machine:
     * guardrail check, drift detection, candidate retrain, shadow
     * scoring, possible promotion or rollback. Called by the background
     * thread every windowMs; deterministic benches call it directly.
     */
    void advanceWindow();

    /** Snapshot of the retrainer state. */
    RetrainerStats stats() const;

    /** Registers retraining counters/gauges on a metrics registry so
     *  the windowed CSV gains a predictor lane. */
    void attachMetrics(obs::MetricsRegistry* metrics);

    /** Stops the background thread (idempotent; destructor calls it). */
    void stop();

  private:
    struct Sample
    {
        std::vector<double> features;
        double actualMs = 0.0;
    };

    struct ShadowScore
    {
        double mae = 0.0;
        double recall = 1.0; // trivially perfect with no long requests
    };

    ShadowScore scoreOnHoldback(const FlatForest& flat,
                                const std::deque<Sample>& holdback) const;
    void publishMetricsLocked();

    VersionedPredictor& live_;
    const std::vector<std::string> featureNames_;
    const RetrainOptions options_;

    /** Replay buffer + current-window accumulators (hot path). */
    mutable std::mutex dataMutex_;
    std::deque<Sample> buffer_;
    stats::LogHistogram windowAbsErr_;
    std::uint64_t windowCompletions_ = 0;

    /** State machine + published stats (advanceWindow/stats). */
    mutable std::mutex stateMutex_;
    RetrainState state_ = RetrainState::kMonitoring;
    std::optional<ml::Gbrt> candidate_;
    std::optional<FlatForest> candidateFlat_;
    std::optional<ml::Gbrt> lastKnownGood_;
    ModelSource lastKnownGoodSource_ = ModelSource::kOffline;
    int consecutiveWins_ = 0;
    int guardLeft_ = 0;
    int cooldownLeft_ = 0;
    double ewmaErr_ = 0.0;
    double rollbackBaselineErr_ = 0.0;
    RetrainerStats stats_;

    obs::MetricsRegistry* metrics_ = nullptr;

    /** Background thread (StatsSampler pattern). */
    std::mutex threadMutex_;
    std::condition_variable cv_;
    bool stopRequested_ = false;
    std::thread thread_;
};

} // namespace tpc::predict
