/**
 * @file
 * FlatForest: a trained tpc::ml::Gbrt compiled into a cache-friendly
 * structure-of-arrays layout for sub-microsecond dispatch-time inference.
 *
 * The pointer-based ensemble walks one heap-allocated node vector per
 * tree with a data-dependent branch per level; at dispatch that cost is
 * pure hot-path overhead (the TPC policy consults the predictor on every
 * request). Compiling flattens every tree into one shared array of
 * packed 32-byte node records (feature index / threshold / children /
 * leaf value) laid out in level order, and traversal becomes a
 * fixed-trip loop whose
 * body is a single conditional-move — no branches for the predictor to
 * mispredict, at most one cache-line fill per level (all fields a step
 * reads live in one aligned 32-byte node record; sibling nodes — the
 * two candidate targets of every branch — are adjacent).
 *
 * Predictions are bit-identical to Gbrt::predict: thresholds, leaf
 * values, the base score and the learning-rate accumulation order are
 * preserved exactly (verified by the PredictFlatForest property tests).
 * Leaves self-loop (left == right == self, threshold = +inf), so the
 * per-tree loop can run a fixed depth-1 iterations regardless of where
 * the walk lands — the traversal is branchless end to end.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/gbrt.h"

namespace tpc::predict {

/** A compiled, immutable, shareable inference structure. */
class FlatForest
{
  public:
    /** An empty forest predicting 0.0 (compile() replaces it). */
    FlatForest() = default;

    /**
     * Compiles a fitted ensemble. The model may be degenerate: zero
     * trees (base score only) or trees that are a single leaf.
     */
    static FlatForest compile(const ml::Gbrt& model);

    /** Predicts the target for one raw feature vector. Bit-identical to
     *  Gbrt::predict on the compiled model. */
    double predict(const double* features) const
    {
        double score = baseScore_;
        const std::size_t trees = root_.size();
        std::size_t t = 0;
        // Eight trees interleaved: a single tree's walk is one
        // dependent-load chain (each step's address comes from the
        // previous load), so its latency is memory-bound; eight
        // independent chains keep the load ports busy. Because leaves
        // self-loop, every tree can safely run the group's max depth —
        // extra steps are no-ops spinning on the leaf's cache line —
        // and the final accumulation stays in tree order, so the result
        // is bit-identical to the scalar walk.
        for (; t + 8 <= trees; t += 8) {
            std::int32_t n0 = root_[t];
            std::int32_t n1 = root_[t + 1];
            std::int32_t n2 = root_[t + 2];
            std::int32_t n3 = root_[t + 3];
            std::int32_t n4 = root_[t + 4];
            std::int32_t n5 = root_[t + 5];
            std::int32_t n6 = root_[t + 6];
            std::int32_t n7 = root_[t + 7];
            std::int32_t depth = depth_[t];
            for (std::size_t i = 1; i < 8; ++i)
                depth = depth_[t + i] > depth ? depth_[t + i] : depth;
            for (; depth > 0; --depth) {
                n0 = step(features, n0);
                n1 = step(features, n1);
                n2 = step(features, n2);
                n3 = step(features, n3);
                n4 = step(features, n4);
                n5 = step(features, n5);
                n6 = step(features, n6);
                n7 = step(features, n7);
            }
            score += learningRate_ * leafValue(n0);
            score += learningRate_ * leafValue(n1);
            score += learningRate_ * leafValue(n2);
            score += learningRate_ * leafValue(n3);
            score += learningRate_ * leafValue(n4);
            score += learningRate_ * leafValue(n5);
            score += learningRate_ * leafValue(n6);
            score += learningRate_ * leafValue(n7);
        }
        for (; t < trees; ++t) {
            std::int32_t node = root_[t];
            for (std::int32_t d = depth_[t]; d > 0; --d)
                node = step(features, node);
            score += learningRate_ * leafValue(node);
        }
        return score;
    }

    double predict(const std::vector<double>& features) const
    {
        return predict(features.data());
    }

    /**
     * Predicts @p count rows at once, tree-outer so each tree's node
     * arrays stay hot in cache across the whole batch. Rows are
     * consecutive blocks of @p stride doubles starting at @p rows.
     * Per-row results are bit-identical to predict() (the per-row
     * accumulation order over trees is unchanged).
     */
    void predictBatch(const double* rows, std::size_t count,
                      std::size_t stride, double* out) const;

    std::size_t treeCount() const { return root_.size(); }
    std::size_t nodeCount() const { return nodes_.size(); }
    double baseScore() const { return baseScore_; }

    /** Max tree depth in traversal steps (0 for leaf-only trees). */
    std::int32_t maxDepth() const;

  private:
    /**
     * One packed node: every field a traversal step reads sits in one
     * aligned 32-byte record, so a step costs at most one cache-line
     * fill (the split-field SoA variant touched up to four lines per
     * step and measured ~30% slower). Leaves carry threshold = +inf
     * and left == right == self so the traversal loop needs no leaf
     * test.
     */
    struct alignas(32) Node {
        double threshold;
        double value;
        std::int32_t feature;
        std::int32_t left;
        std::int32_t right;
    };
    static_assert(sizeof(Node) == 32, "two nodes per cache line");

    /** One traversal step: cmov, not a branch — both children are
     *  always valid (leaves self-loop), so extra iterations are no-ops. */
    std::int32_t step(const double* features, std::int32_t node) const
    {
        const Node& n = nodes_[static_cast<std::size_t>(node)];
        return features[n.feature] <= n.threshold ? n.left : n.right;
    }

    double leafValue(std::int32_t node) const
    {
        return nodes_[static_cast<std::size_t>(node)].value;
    }

    /** Node storage, all trees concatenated in per-tree level order. */
    std::vector<Node> nodes_;
    /** Root node index per tree. */
    std::vector<std::int32_t> root_;
    /** Traversal iterations per tree (tree depth minus one). */
    std::vector<std::int32_t> depth_;
    double baseScore_ = 0.0;
    double learningRate_ = 0.1;
};

} // namespace tpc::predict
