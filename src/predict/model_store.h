/**
 * @file
 * Model persistence: save/load a trained Gbrt via its text format with
 * the same atomic tmp+rename discipline src/adapt uses for promoted
 * target tables, so a concurrent loader never observes a half-written
 * model file.
 */
#pragma once

#include <string>

#include "ml/gbrt.h"
#include "predict/flat_forest.h"

namespace tpc::predict {

/**
 * Writes the model's text serialization to @p path atomically: the
 * bytes land in "path.tmp" first and are renamed over the target.
 * Fatal on I/O error.
 */
void saveModelToFile(const ml::Gbrt& model, const std::string& path);

/** Reads a model written by saveModelToFile. Fatal on I/O error or
 *  malformed content. */
ml::Gbrt loadModelFromFile(const std::string& path);

/** Loads a saved model and compiles it for serving in one step. */
FlatForest compileModelFromFile(const std::string& path);

} // namespace tpc::predict
