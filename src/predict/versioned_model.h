/**
 * @file
 * Versioned, atomically hot-swappable predictor model.
 *
 * Mirrors core::VersionedTargetTable exactly: the online retrainer
 * republishes the model while the dispatch hot path predicts with it on
 * every request, so the swap is RCU-style — readers hold an immutable
 * `shared_ptr<const PredictorModel>` snapshot and pay one acquire load
 * of the version counter per dispatch; the pointer is re-fetched (under
 * a short mutex) only when the version moved.
 *
 * Memory-ordering contract: publish() stores the new snapshot under the
 * mutex *before* incrementing `version_` with release; readers load
 * `version_` with acquire and, on change, take the mutex to copy the
 * shared_ptr. A reader that observed version v therefore sees the model
 * published with v. See DESIGN.md "Predictor subsystem".
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "ml/gbrt.h"
#include "predict/flat_forest.h"

namespace tpc::predict {

/** Provenance of the active model. */
enum class ModelSource : int
{
    kOffline = 0,   ///< Trained offline or loaded from a model file.
    kRetrained = 1, ///< Promoted online by the OnlineRetrainer.
};

/** Human-readable source label for /statsz and CSVs. */
const char* modelSourceName(ModelSource source);

/**
 * A serving model: the source ensemble (kept for retraining warm-starts,
 * persistence, and introspection) plus its compiled FlatForest, which is
 * what the hot path actually calls.
 */
struct PredictorModel
{
    ml::Gbrt source;
    FlatForest flat;

    static PredictorModel fromGbrt(ml::Gbrt model)
    {
        PredictorModel out;
        out.flat = FlatForest::compile(model);
        out.source = std::move(model);
        return out;
    }
};

/** One published model snapshot. */
struct ModelSnapshot
{
    std::shared_ptr<const PredictorModel> model;
    std::uint64_t version = 0;
    ModelSource source = ModelSource::kOffline;
};

/**
 * Holder of the currently-active model. Any number of reader threads
 * (dispatch paths) and one writer (the retrainer) may use it
 * concurrently.
 */
class VersionedPredictor
{
  public:
    /** Starts at version 1 with the given offline model. */
    explicit VersionedPredictor(ml::Gbrt initial);

    /** Current version; monotonically increasing from 1. */
    std::uint64_t version() const
    {
        return version_.load(std::memory_order_acquire);
    }

    /** Copies the current snapshot (model pointer, version, source). */
    ModelSnapshot snapshot() const;

    /**
     * Publishes a new active model, bumping the version. Returns the
     * new version. Never blocks readers for longer than a shared_ptr
     * copy; the FlatForest compile happens before the lock is taken.
     */
    std::uint64_t publish(ml::Gbrt model, ModelSource source);

  private:
    mutable std::mutex mutex_;
    std::shared_ptr<const PredictorModel> model_;
    ModelSource source_ = ModelSource::kOffline;
    std::atomic<std::uint64_t> version_;
};

/**
 * Per-reader caching handle: keeps the last snapshot and re-fetches it
 * only when the acquire-loaded version differs, so the steady-state
 * per-prediction cost is one atomic load. Not thread-safe itself — each
 * reader thread (or externally-synchronized reader, like ThreadedServer
 * under its scheduler lock) owns its own handle.
 */
class PredictorHandle
{
  public:
    PredictorHandle() = default;

    explicit PredictorHandle(const VersionedPredictor* shared)
        : shared_(shared)
    {
    }

    bool attached() const { return shared_ != nullptr; }

    /** Refreshes the cached snapshot if the version moved, then returns
     *  it. Returns an empty snapshot when unattached. */
    const ModelSnapshot& refresh()
    {
        if (shared_ != nullptr) {
            const std::uint64_t v = shared_->version();
            if (v != cached_.version)
                cached_ = shared_->snapshot();
        }
        return cached_;
    }

    /** Predicts with the freshest model. Returns @p fallback when
     *  unattached. */
    double predict(const double* features, double fallback = 0.0)
    {
        const ModelSnapshot& snap = refresh();
        return snap.model ? snap.model->flat.predict(features) : fallback;
    }

  private:
    const VersionedPredictor* shared_ = nullptr;
    ModelSnapshot cached_;
};

} // namespace tpc::predict
