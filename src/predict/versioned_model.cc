#include "predict/versioned_model.h"

namespace tpc::predict {

const char*
modelSourceName(ModelSource source)
{
    switch (source) {
    case ModelSource::kOffline:
        return "offline";
    case ModelSource::kRetrained:
        return "retrained";
    }
    return "unknown";
}

VersionedPredictor::VersionedPredictor(ml::Gbrt initial)
    : model_(std::make_shared<const PredictorModel>(
          PredictorModel::fromGbrt(std::move(initial)))),
      version_(1)
{
}

ModelSnapshot
VersionedPredictor::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {model_, version_.load(std::memory_order_relaxed), source_};
}

std::uint64_t
VersionedPredictor::publish(ml::Gbrt model, ModelSource source)
{
    auto next = std::make_shared<const PredictorModel>(
        PredictorModel::fromGbrt(std::move(model)));
    std::lock_guard<std::mutex> lock(mutex_);
    model_ = std::move(next);
    source_ = source;
    // Release pairs with the readers' acquire load in version(): a reader
    // that sees the new version and re-snapshots is guaranteed to observe
    // this publish (the mutex orders the snapshot copy itself).
    const std::uint64_t v =
        version_.load(std::memory_order_relaxed) + 1;
    version_.store(v, std::memory_order_release);
    return v;
}

} // namespace tpc::predict
