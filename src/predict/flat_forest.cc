#include "predict/flat_forest.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/logging.h"

namespace tpc::predict {

FlatForest
FlatForest::compile(const ml::Gbrt& model)
{
    FlatForest flat;
    flat.baseScore_ = model.baseScore();
    flat.learningRate_ = model.learningRate();

    std::size_t totalNodes = 0;
    for (const ml::RegressionTree& tree : model.trees())
        totalNodes += tree.nodeCount();
    flat.nodes_.reserve(totalNodes);
    flat.root_.reserve(model.trees().size());
    flat.depth_.reserve(model.trees().size());

    for (const ml::RegressionTree& tree : model.trees()) {
        TPC_CHECK(tree.nodeCount() > 0);
        const auto base = static_cast<std::int32_t>(flat.nodes_.size());
        flat.root_.push_back(base);
        flat.depth_.push_back(
            std::max(0, tree.depth() - 1)); // steps, not node count

        // Level-order re-layout: siblings are adjacent and the top of
        // the tree (the levels every prediction touches) shares cache
        // lines. slotOf[original node id] -> flat slot (tree-relative).
        std::vector<std::int32_t> slotOf(tree.nodeCount(), -1);
        std::deque<int> queue;
        queue.push_back(0);
        slotOf[0] = 0;
        std::int32_t nextSlot = 1;
        std::vector<int> order;
        order.reserve(tree.nodeCount());
        while (!queue.empty()) {
            const int id = queue.front();
            queue.pop_front();
            order.push_back(id);
            const ml::RegressionTree::NodeView n =
                tree.node(static_cast<std::size_t>(id));
            if (n.feature >= 0) {
                slotOf[static_cast<std::size_t>(n.left)] = nextSlot++;
                slotOf[static_cast<std::size_t>(n.right)] = nextSlot++;
                queue.push_back(n.left);
                queue.push_back(n.right);
            }
        }
        TPC_CHECK(order.size() == tree.nodeCount());

        flat.nodes_.resize(flat.nodes_.size() + tree.nodeCount());
        for (const int id : order) {
            const ml::RegressionTree::NodeView n =
                tree.node(static_cast<std::size_t>(id));
            Node& slot = flat.nodes_[static_cast<std::size_t>(
                base + slotOf[static_cast<std::size_t>(id)])];
            slot.value = n.value;
            if (n.feature >= 0) {
                slot.feature = n.feature;
                slot.threshold = n.threshold;
                slot.left = base + slotOf[static_cast<std::size_t>(n.left)];
                slot.right =
                    base + slotOf[static_cast<std::size_t>(n.right)];
            } else {
                // Leaf: self-loop under an always-true comparison so
                // surplus traversal iterations stay put.
                slot.feature = 0;
                slot.threshold =
                    std::numeric_limits<double>::infinity();
                slot.left = base + slotOf[static_cast<std::size_t>(id)];
                slot.right = slot.left;
            }
        }
    }
    return flat;
}

void
FlatForest::predictBatch(const double* rows, std::size_t count,
                         std::size_t stride, double* out) const
{
    for (std::size_t r = 0; r < count; ++r)
        out[r] = baseScore_;
    const std::size_t trees = root_.size();
    for (std::size_t t = 0; t < trees; ++t) {
        const std::int32_t rootNode = root_[t];
        const std::int32_t steps = depth_[t];
        // Four rows interleaved per tree (same reasoning as predict():
        // four independent load chains instead of one); accumulation
        // into out[r] stays tree-ordered, so per-row results remain
        // bit-identical to the scalar walk.
        std::size_t r = 0;
        for (; r + 4 <= count; r += 4) {
            const double* r0 = rows + r * stride;
            const double* r1 = r0 + stride;
            const double* r2 = r1 + stride;
            const double* r3 = r2 + stride;
            std::int32_t n0 = rootNode;
            std::int32_t n1 = rootNode;
            std::int32_t n2 = rootNode;
            std::int32_t n3 = rootNode;
            for (std::int32_t d = steps; d > 0; --d) {
                n0 = step(r0, n0);
                n1 = step(r1, n1);
                n2 = step(r2, n2);
                n3 = step(r3, n3);
            }
            out[r] += learningRate_ * leafValue(n0);
            out[r + 1] += learningRate_ * leafValue(n1);
            out[r + 2] += learningRate_ * leafValue(n2);
            out[r + 3] += learningRate_ * leafValue(n3);
        }
        for (; r < count; ++r) {
            const double* row = rows + r * stride;
            std::int32_t node = rootNode;
            for (std::int32_t d = steps; d > 0; --d)
                node = step(row, node);
            out[r] += learningRate_ * leafValue(node);
        }
    }
}

std::int32_t
FlatForest::maxDepth() const
{
    std::int32_t depth = 0;
    for (const std::int32_t d : depth_)
        depth = std::max(depth, d);
    return depth;
}

} // namespace tpc::predict
