#include "predict/online_retrainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "ml/dataset.h"
#include "predict/model_store.h"
#include "util/logging.h"

namespace tpc::predict {

const char*
retrainStateName(RetrainState state)
{
    switch (state) {
    case RetrainState::kMonitoring:
        return "monitoring";
    case RetrainState::kHolding:
        return "holding";
    case RetrainState::kCooldown:
        return "cooldown";
    }
    return "unknown";
}

OnlineRetrainer::OnlineRetrainer(VersionedPredictor& live,
                                 std::vector<std::string> featureNames,
                                 const RetrainOptions& options)
    : live_(live), featureNames_(std::move(featureNames)), options_(options)
{
    TPC_CHECK(options_.windowMs > 0.0);
    TPC_CHECK(options_.promoteAfterWindows >= 1);
    TPC_CHECK(options_.holdbackFraction > 0.0 &&
              options_.holdbackFraction < 1.0);
    TPC_CHECK(!featureNames_.empty());

    if (options_.startThread) {
        thread_ = std::thread([this] {
            std::unique_lock<std::mutex> lock(threadMutex_);
            const auto interval =
                std::chrono::duration<double, std::milli>(
                    options_.windowMs);
            while (!stopRequested_) {
                if (cv_.wait_for(lock, interval,
                                 [this] { return stopRequested_; }))
                    break;
                lock.unlock();
                advanceWindow();
                lock.lock();
            }
        });
    }
}

OnlineRetrainer::~OnlineRetrainer()
{
    stop();
}

void
OnlineRetrainer::stop()
{
    {
        std::lock_guard<std::mutex> lock(threadMutex_);
        stopRequested_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
OnlineRetrainer::observe(const std::vector<double>& features,
                         double actualMs, double predictedMs)
{
    TPC_CHECK(features.size() == featureNames_.size());
    const double absErr = std::fabs(predictedMs - actualMs);
    std::lock_guard<std::mutex> lock(dataMutex_);
    buffer_.push_back({features, actualMs});
    while (buffer_.size() > options_.bufferCapacity)
        buffer_.pop_front();
    windowAbsErr_.add(std::max(absErr, 1e-3));
    ++windowCompletions_;
}

OnlineRetrainer::ShadowScore
OnlineRetrainer::scoreOnHoldback(const FlatForest& flat,
                                 const std::deque<Sample>& holdback) const
{
    ShadowScore score;
    if (holdback.empty())
        return score;
    double absSum = 0.0;
    std::uint64_t actualLong = 0;
    std::uint64_t predictedLong = 0;
    for (const Sample& s : holdback) {
        const double pred = flat.predict(s.features.data());
        absSum += std::fabs(pred - s.actualMs);
        if (s.actualMs > options_.longThresholdMs) {
            ++actualLong;
            if (pred > options_.longThresholdMs)
                ++predictedLong;
        }
    }
    score.mae = absSum / static_cast<double>(holdback.size());
    score.recall = actualLong > 0 ? static_cast<double>(predictedLong) /
                                        static_cast<double>(actualLong)
                                  : 1.0;
    return score;
}

void
OnlineRetrainer::advanceWindow()
{
    // 1. Close the current window and copy out what this step needs:
    // the error histogram, and the buffer split into train + holdback
    // (the most recent slice is never trained on, so shadow scores stay
    // honest).
    stats::LogHistogram absErr;
    std::uint64_t completions = 0;
    std::deque<Sample> train;
    std::deque<Sample> holdback;
    {
        std::lock_guard<std::mutex> lock(dataMutex_);
        std::swap(absErr, windowAbsErr_);
        completions = windowCompletions_;
        windowCompletions_ = 0;
        const auto holdCount = static_cast<std::size_t>(
            static_cast<double>(buffer_.size()) *
            options_.holdbackFraction);
        const std::size_t trainCount = buffer_.size() - holdCount;
        for (std::size_t i = 0; i < buffer_.size(); ++i)
            (i < trainCount ? train : holdback).push_back(buffer_[i]);
    }
    const double errP50 = absErr.percentile(0.5);
    const double errQ = absErr.percentile(options_.errorQuantile);

    // 2. One step of the drift -> retrain -> promote state machine.
    std::lock_guard<std::mutex> lock(stateMutex_);
    ++stats_.windowsEvaluated;
    stats_.lastWindowCompletions = completions;
    stats_.lastWindowErrP50 = errP50;
    stats_.lastWindowErrQuantile = errQ;
    stats_.bufferedSamples = train.size() + holdback.size();

    const ModelSnapshot active = live_.snapshot();
    const bool enoughSamples = completions >= options_.minWindowSamples;
    bool drifted = false;

    switch (state_) {
    case RetrainState::kHolding: {
        // Guardrail: actual windowed error under the promoted model vs.
        // the (drifted) pre-promotion level — a promotion that did not
        // improve matters gets demoted.
        if (enoughSamples &&
            errQ > rollbackBaselineErr_ * options_.rollbackErrFactor &&
            lastKnownGood_) {
            live_.publish(*lastKnownGood_, lastKnownGoodSource_);
            ++stats_.rollbacks;
            candidate_.reset();
            candidateFlat_.reset();
            consecutiveWins_ = 0;
            state_ = RetrainState::kCooldown;
            cooldownLeft_ = options_.cooldownWindows;
            break;
        }
        if (--guardLeft_ <= 0) {
            // Promotion survived its probation: the promoted model is
            // the new last-known-good.
            lastKnownGood_ = active.model->source;
            lastKnownGoodSource_ = active.source;
            state_ = RetrainState::kMonitoring;
        }
        break;
    }
    case RetrainState::kCooldown: {
        if (--cooldownLeft_ <= 0)
            state_ = RetrainState::kMonitoring;
        break;
    }
    case RetrainState::kMonitoring: {
        if (!enoughSamples)
            break;
        drifted =
            ewmaErr_ > 0.0 && errQ > ewmaErr_ * options_.driftFactor;
        if (drifted)
            ++stats_.driftWindows;
        if ((drifted || candidate_) &&
            train.size() >= options_.minTrainSamples) {
            // Retrain off the hot path on everything but the holdback.
            // Once a drift has opened a retraining episode, every
            // window refreshes the candidate — the buffer keeps turning
            // over toward the shifted mix, so each refit predicts it
            // better than the last until one clears the shadow bar.
            ml::Dataset data(featureNames_);
            for (const Sample& s : train)
                data.addRow(s.features, s.actualMs);
            ml::Gbrt next;
            next.train(data, options_.train);
            candidateFlat_ = FlatForest::compile(next);
            candidate_ = std::move(next);
            ++stats_.retrains;
        }
        if (candidate_) {
            // Shadow evaluation on the holdback: serving is untouched —
            // only live_.publish below changes anything.
            const ShadowScore activeScore =
                scoreOnHoldback(active.model->flat, holdback);
            const ShadowScore candScore =
                scoreOnHoldback(*candidateFlat_, holdback);
            stats_.activeShadowMae = activeScore.mae;
            stats_.candidateShadowMae = candScore.mae;
            stats_.activeShadowRecall = activeScore.recall;
            stats_.candidateShadowRecall = candScore.recall;
            const bool wins =
                !holdback.empty() &&
                candScore.mae <
                    activeScore.mae * (1.0 - options_.hysteresis) &&
                candScore.recall >=
                    activeScore.recall - options_.recallSlack;
            consecutiveWins_ = wins ? consecutiveWins_ + 1 : 0;
            if (consecutiveWins_ >= options_.promoteAfterWindows) {
                // Promote: remember the incumbent for rollback, swap.
                rollbackBaselineErr_ = errQ;
                lastKnownGood_ = active.model->source;
                lastKnownGoodSource_ = active.source;
                if (!options_.promotedModelPath.empty())
                    saveModelToFile(*candidate_,
                                    options_.promotedModelPath);
                live_.publish(std::move(*candidate_),
                              ModelSource::kRetrained);
                ++stats_.promotions;
                candidate_.reset();
                candidateFlat_.reset();
                consecutiveWins_ = 0;
                guardLeft_ = options_.guardWindows;
                state_ = RetrainState::kHolding;
                // Re-seed the drift baseline at the new model's error
                // level (next windows set it).
                ewmaErr_ = 0.0;
            }
        }
        break;
    }
    }

    // Baseline tracks slow error movement only: frozen while drifted —
    // so it cannot chase the excursion it is meant to flag — and while
    // a candidate is open (post-shift windows that fall just short of
    // the drift factor would otherwise ratchet the baseline up to the
    // drifted level mid-episode).
    if (completions > 0 && !drifted && !candidate_ &&
        state_ == RetrainState::kMonitoring)
        ewmaErr_ = ewmaErr_ > 0.0 ? 0.9 * ewmaErr_ + 0.1 * errQ : errQ;
    stats_.baselineErrQuantile = ewmaErr_;

    stats_.state = state_;
    stats_.hasCandidate = candidate_.has_value();
    stats_.consecutiveWins = consecutiveWins_;
    publishMetricsLocked();
}

void
OnlineRetrainer::publishMetricsLocked()
{
    if (!metrics_)
        return;
    const ModelSnapshot snap = live_.snapshot();
    metrics_->counter("predict_windows").inc();
    metrics_->gauge("predict_model_version")
        .set(static_cast<double>(snap.version));
    metrics_->gauge("predict_model_retrained")
        .set(snap.source == ModelSource::kRetrained ? 1.0 : 0.0);
    metrics_->gauge("predict_state").set(static_cast<double>(state_));
    metrics_->gauge("predict_window_err_p50")
        .set(stats_.lastWindowErrP50);
    metrics_->gauge("predict_window_err_quantile")
        .set(stats_.lastWindowErrQuantile);
    metrics_->gauge("predict_baseline_err_quantile").set(ewmaErr_);
    metrics_->gauge("predict_shadow_active_mae")
        .set(stats_.activeShadowMae);
    metrics_->gauge("predict_shadow_candidate_mae")
        .set(stats_.candidateShadowMae);
    auto syncCounter = [this](const char* name, std::uint64_t total) {
        obs::Counter& c = metrics_->counter(name);
        if (total > c.value())
            c.inc(total - c.value());
    };
    syncCounter("predict_drift_windows", stats_.driftWindows);
    syncCounter("predict_retrains", stats_.retrains);
    syncCounter("predict_promotions", stats_.promotions);
    syncCounter("predict_rollbacks", stats_.rollbacks);
}

RetrainerStats
OnlineRetrainer::stats() const
{
    // Lock order matters for coherence, not just safety: promotions
    // swap the live model and bump the counters under stateMutex_, so
    // snapshotting the model under the same lock guarantees a reader
    // never sees the new counters paired with the old model (or vice
    // versa).
    std::lock_guard<std::mutex> lock(stateMutex_);
    const ModelSnapshot snap = live_.snapshot();
    RetrainerStats out = stats_;
    out.modelVersion = snap.version;
    out.modelSource = snap.source;
    return out;
}

void
OnlineRetrainer::attachMetrics(obs::MetricsRegistry* metrics)
{
    std::lock_guard<std::mutex> lock(stateMutex_);
    metrics_ = metrics;
}

} // namespace tpc::predict
