#include "predict/model_store.h"

#include <cstdio>
#include <fstream>
#include <iterator>

#include "util/logging.h"

namespace tpc::predict {

void
saveModelToFile(const ml::Gbrt& model, const std::string& path)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            util::fatal("cannot open model file for writing: " + tmp);
        out << model.saveText();
        out.flush();
        if (!out)
            util::fatal("failed writing model file: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        util::fatal("cannot rename model into place: " + path);
}

ml::Gbrt
loadModelFromFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot open model file: " + path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return ml::Gbrt::loadText(text);
}

FlatForest
compileModelFromFile(const std::string& path)
{
    return FlatForest::compile(loadModelFromFile(path));
}

} // namespace tpc::predict
